//! The unified engine API: one trait over every simulation engine, a
//! builder that replaces per-engine constructor plumbing, and the adaptive
//! auto-switching engine.
//!
//! `ppsim` grew three engines — the per-agent [`Simulation`], the silent-run
//! skipping [`BatchSimulation`], and the collision-sampling
//! [`MultiBatchSimulation`] — that share their `run` / `run_until` /
//! `measure_stabilization` surface only by convention, leaving every caller
//! to hand-dispatch over an engine enum. This module makes the convention a
//! contract:
//!
//! * [`SimulationEngine`] — the shared surface as an object-safe trait, with
//!   predicates over [`CountConfiguration`] (the representation every engine
//!   can serve) and an explicit [`SimulationEngine::predicate_granularity`]
//!   so callers can see *when* their predicate is actually observed,
//! * [`EngineKind`] — the engine selector, including the [`EngineKind::Auto`]
//!   tier,
//! * [`SimBuilder`] — protocol + init + seed + kind → boxed engine, replacing
//!   the ad-hoc `new` / `from_configuration` / `clean` constructor trio at
//!   call sites,
//! * [`PerStepEngine`] — the per-agent engine behind the count-predicate
//!   surface: a [`Simulation`] plus an incrementally maintained count mirror
//!   (two `encode` calls per interaction), so per-step runs serve the same
//!   predicates as the count engines at O(1) per check,
//! * [`AdaptiveSimulation`] — the `Auto` tier: runs the multi-batch engine
//!   while the measured active-interaction fraction is high and hands the
//!   count vector off to the batched engine (and back) at a hysteresis
//!   threshold, preserving exact budget accounting and absolute interaction
//!   indices across the handoff.
//!
//! # Predicate granularity
//!
//! The engines observe stop/stabilization predicates at different points,
//! and this is the **one** place the contract is written down:
//!
//! * [`BatchSimulation`] evaluates predicates after every state-changing
//!   interaction — exact, because silent interactions cannot change the
//!   configuration ([`PredicateGranularity::Interaction`]).
//! * [`PerStepEngine`] evaluates predicates every `check_every` interactions
//!   ([`PredicateGranularity::Every`]): hitting times overshoot by less than
//!   the stride. This is the coarse-checking contract that
//!   [`crate::epidemic::measure_epidemic_time_coarse`] exposes for epidemic
//!   workloads, routed through this engine.
//! * [`MultiBatchSimulation`] evaluates predicates at epoch commits — the
//!   interactions inside an epoch have no defined intermediate order — so
//!   hitting times carry `O(√n)` observation granularity
//!   ([`PredicateGranularity::EpochCommit`]).
//! * [`AdaptiveSimulation`] reports the granularity of whichever engine is
//!   currently active.
//!
//! `StabilizationOptions::check_every` is honored by the per-step engine
//! only; the count engines already observe at their intrinsic granularity
//! (see the table above) and ignore it.
//!
//! # Quick example
//!
//! ```
//! use ppsim::engine::{EngineKind, SimBuilder, SimulationEngine};
//! use ppsim::epidemic::{OneWayEpidemic, INFORMED};
//!
//! // One entry point for every engine tier: pick a kind — or let `Auto`
//! // switch between the count engines as activity rises and falls.
//! let mut sim = SimBuilder::new(OneWayEpidemic::new(10_000, 1))
//!     .seed(7)
//!     .kind(EngineKind::Auto)
//!     .build();
//! let out = sim.run_until(&mut |c| c.count(INFORMED) == c.population(), u64::MAX);
//! assert!(out.satisfied);
//! assert_eq!(sim.counts().count(INFORMED), 10_000);
//! ```

use crate::batched::BatchSimulation;
use crate::configuration::Configuration;
use crate::convergence::{StabilizationDetector, StabilizationResult};
use crate::count_config::CountConfiguration;
use crate::enumerable::EnumerableProtocol;
use crate::error::SimError;
use crate::metrics::InteractionMetrics;
use crate::multibatch::MultiBatchSimulation;
use crate::protocol::CleanInit;
use crate::rng::derive_seed;
use crate::simulation::{RunOutcome, Simulation, StabilizationOptions};
use crate::telemetry::{BalanceSummary, Counter, SpanKind, Telemetry};
use serde::Serialize;

/// The simulation engine a run executes under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum EngineKind {
    /// The per-agent engine ([`Simulation`], served through
    /// [`PerStepEngine`]): pays for every interaction, works for any
    /// enumerable protocol, exact per-agent trajectories.
    PerStep,
    /// The batched count-based engine ([`BatchSimulation`]): skips silent
    /// runs geometrically, pays per state-changing interaction.
    Batched,
    /// The multi-batch collision sampler ([`MultiBatchSimulation`]):
    /// resolves `Θ(√n)`-interaction epochs per statistical draw, pays per
    /// epoch regardless of how many interactions change state.
    MultiBatch,
    /// The adaptive engine ([`AdaptiveSimulation`]): multi-batch while the
    /// measured active-interaction fraction is high, batched once silence
    /// dominates, switching at a hysteresis threshold.
    Auto,
}

impl EngineKind {
    /// The engine's name as used in experiment-table rows and CLI arguments.
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::PerStep => "per-step",
            EngineKind::Batched => "batched",
            EngineKind::MultiBatch => "multibatch",
            EngineKind::Auto => "auto",
        }
    }

    /// Parses an engine kind from its [`EngineKind::label`] token.
    pub fn parse(token: &str) -> Option<EngineKind> {
        match token {
            "per-step" => Some(EngineKind::PerStep),
            "batched" => Some(EngineKind::Batched),
            "multibatch" => Some(EngineKind::MultiBatch),
            "auto" => Some(EngineKind::Auto),
            _ => None,
        }
    }
}

/// When an engine actually observes stop/stabilization predicates — see the
/// [module docs](self) for the per-engine table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum PredicateGranularity {
    /// Observed after every interaction that can change the configuration:
    /// hitting times are exact at interaction resolution.
    Interaction,
    /// Observed every `stride` interactions: hitting times overshoot the
    /// true hitting time by less than `stride`.
    Every(u64),
    /// Observed at epoch commits with the given expected epoch length
    /// (`≈ 0.63·√n` interactions): hitting times overshoot by one epoch.
    EpochCommit {
        /// Expected epoch length in interactions.
        expected_interactions: u64,
    },
}

/// The shared surface of every simulation engine.
///
/// Predicates are functions of the [`CountConfiguration`] — the one
/// representation all engines can serve (the per-step engine maintains an
/// exact count mirror, see [`PerStepEngine`]). They are taken as
/// `&mut dyn FnMut` so the trait stays object-safe and a
/// [`SimBuilder`]-built `Box<dyn SimulationEngine<P>>` exposes the full
/// surface; pass a closure as `&mut |c| ...`.
///
/// Interaction-index conventions are shared across all implementations:
/// [`RunOutcome::interactions`] and [`StabilizationResult::interactions`]
/// are *relative* (executed by that call), while
/// [`StabilizationResult::stabilized_at`] and
/// [`SimulationEngine::interactions`] are *absolute* (counted from the
/// engine's construction — and preserved across [`AdaptiveSimulation`]
/// handoffs).
pub trait SimulationEngine<P: EnumerableProtocol> {
    /// The protocol being simulated.
    fn protocol(&self) -> &P;

    /// The current configuration, as state counts.
    fn counts(&self) -> &CountConfiguration;

    /// Materializes the current configuration per agent. Count engines order
    /// agents by state index (agents are anonymous); the per-step engine
    /// preserves true agent identities.
    fn to_configuration(&self) -> Configuration<P::State>;

    /// Number of interactions executed since construction (absolute).
    fn interactions(&self) -> u64;

    /// Parallel time elapsed so far (interactions divided by `n`).
    fn parallel_time(&self) -> f64 {
        self.interactions() as f64 / self.counts().population() as f64
    }

    /// When this engine observes predicates — epoch-level vs
    /// interaction-level; see the [module docs](self).
    ///
    /// The granularity is also the engine's *observability* contract:
    /// anything finer than it simply does not exist in the engine's state.
    /// In particular, per-agent [`crate::metrics::InteractionMetrics`] are
    /// available only from the per-step engine (enable them through
    /// [`SimBuilder::telemetry`] and read them via
    /// [`PerStepEngine::interaction_metrics`]) — the count engines treat
    /// agents as anonymous multiplicities, so a batched or epoch-commit
    /// granularity implies there is no per-agent interaction load to report,
    /// at any price. The telemetry deterministic stream carries an
    /// `interaction_balance` summary only for per-step runs for the same
    /// reason.
    fn predicate_granularity(&self) -> PredicateGranularity;

    /// Executes up to `budget` interactions unconditionally and returns the
    /// number executed (always `budget` except for a per-step engine whose
    /// scripted scheduler ran out).
    fn run(&mut self, budget: u64) -> u64;

    /// Runs until `pred` holds or `budget` interactions have been executed
    /// by this call, observing `pred` at this engine's
    /// [`SimulationEngine::predicate_granularity`].
    fn run_until(
        &mut self,
        pred: &mut dyn FnMut(&CountConfiguration) -> bool,
        budget: u64,
    ) -> RunOutcome;

    /// Measures the stabilization time of `pred`:
    /// [`StabilizationResult::stabilized_at`] is the absolute interaction
    /// index from which the predicate held until the end of the run, with
    /// the run stopping early once it has held for `opts.confirm_window`
    /// consecutive interactions. `opts.check_every` applies to the per-step
    /// engine only (see the [module docs](self)).
    fn measure_stabilization(
        &mut self,
        pred: &mut dyn FnMut(&CountConfiguration) -> bool,
        opts: StabilizationOptions,
    ) -> StabilizationResult;
}

impl<P: EnumerableProtocol> SimulationEngine<P> for BatchSimulation<P> {
    fn protocol(&self) -> &P {
        BatchSimulation::protocol(self)
    }
    fn counts(&self) -> &CountConfiguration {
        BatchSimulation::counts(self)
    }
    fn to_configuration(&self) -> Configuration<P::State> {
        BatchSimulation::to_configuration(self)
    }
    fn interactions(&self) -> u64 {
        BatchSimulation::interactions(self)
    }
    fn predicate_granularity(&self) -> PredicateGranularity {
        PredicateGranularity::Interaction
    }
    fn run(&mut self, budget: u64) -> u64 {
        BatchSimulation::run(self, budget);
        budget
    }
    fn run_until(
        &mut self,
        pred: &mut dyn FnMut(&CountConfiguration) -> bool,
        budget: u64,
    ) -> RunOutcome {
        BatchSimulation::run_until(self, |c| pred(c), budget)
    }
    fn measure_stabilization(
        &mut self,
        pred: &mut dyn FnMut(&CountConfiguration) -> bool,
        opts: StabilizationOptions,
    ) -> StabilizationResult {
        BatchSimulation::measure_stabilization(self, |c| pred(c), opts)
    }
}

impl<P: EnumerableProtocol> SimulationEngine<P> for MultiBatchSimulation<P> {
    fn protocol(&self) -> &P {
        MultiBatchSimulation::protocol(self)
    }
    fn counts(&self) -> &CountConfiguration {
        MultiBatchSimulation::counts(self)
    }
    fn to_configuration(&self) -> Configuration<P::State> {
        MultiBatchSimulation::to_configuration(self)
    }
    fn interactions(&self) -> u64 {
        MultiBatchSimulation::interactions(self)
    }
    fn predicate_granularity(&self) -> PredicateGranularity {
        PredicateGranularity::EpochCommit {
            expected_interactions: expected_epoch_length(self.counts().population()),
        }
    }
    fn run(&mut self, budget: u64) -> u64 {
        MultiBatchSimulation::run(self, budget);
        budget
    }
    fn run_until(
        &mut self,
        pred: &mut dyn FnMut(&CountConfiguration) -> bool,
        budget: u64,
    ) -> RunOutcome {
        MultiBatchSimulation::run_until(self, |c| pred(c), budget)
    }
    fn measure_stabilization(
        &mut self,
        pred: &mut dyn FnMut(&CountConfiguration) -> bool,
        opts: StabilizationOptions,
    ) -> StabilizationResult {
        MultiBatchSimulation::measure_stabilization(self, |c| pred(c), opts)
    }
}

/// The expected multi-batch epoch length at population size `n`
/// (`≈ 0.63·√n` by the birthday bound), as advertised through
/// [`PredicateGranularity::EpochCommit`].
fn expected_epoch_length(n: u64) -> u64 {
    ((0.6321 * (n as f64).sqrt()).ceil() as u64).max(1)
}

/// The fraction of ordered agent pairs that are currently *non-silent*,
/// recomputed from the counts in `O(#occupied states²)` silence queries.
///
/// This is the activity measure [`AdaptiveSimulation`] uses while the
/// multi-batch engine is active (the batched engine answers the same
/// question exactly in O(1) via [`BatchSimulation::active_fraction`]).
fn measured_active_fraction<P: EnumerableProtocol>(
    protocol: &P,
    counts: &CountConfiguration,
) -> f64 {
    let n = counts.population();
    let occupied: Vec<(usize, u64)> = counts.occupied().collect();
    // u128 accumulation: a single product c_u · c_v overflows u64 once both
    // counts pass 2³², and the total reaches n(n−1). The denominator is an
    // f64 product for the same reason.
    let mut weight = 0u128;
    for &(u, cu) in &occupied {
        for &(v, cv) in &occupied {
            if !protocol.is_silent(u, v) {
                weight += if u == v {
                    u128::from(cu) * u128::from(cu - 1)
                } else {
                    u128::from(cu) * u128::from(cv)
                };
            }
        }
    }
    weight as f64 / (n as f64 * (n - 1) as f64)
}

/// The per-agent engine behind the unified count-predicate surface.
///
/// Wraps a [`Simulation`] and maintains an **exact count mirror** of the
/// configuration: after every interaction the two touched agents' states are
/// re-encoded (two [`EnumerableProtocol::encode`] calls) and the four
/// affected counters updated, so count predicates cost O(occupied states)
/// per evaluation instead of an O(n) rebuild. The underlying simulation
/// consumes randomness exactly as a bare [`Simulation`] with the same seed —
/// trajectories are identical, the mirror is pure bookkeeping.
///
/// Predicates are evaluated every [`PerStepEngine::with_check_every`]
/// interactions (default: every interaction). A stride above 1 trades
/// hitting-time resolution for fewer predicate evaluations — the coarse
/// contract documented on [`PredicateGranularity::Every`].
#[derive(Debug)]
pub struct PerStepEngine<P: EnumerableProtocol> {
    sim: Simulation<P>,
    counts: CountConfiguration,
    /// `encoded[a]` is the state index agent `a` currently holds — the
    /// per-agent half of the mirror, needed to know which counter an agent
    /// leaves when its state changes.
    encoded: Vec<usize>,
    check_every: u64,
    /// Observability handle; disabled by default, in which case every probe
    /// is an early-out on a `None` and trajectories are untouched.
    telemetry: Telemetry,
    /// Per-agent interaction load, maintained only while telemetry is
    /// enabled (the `O(n)` vector and two increments per interaction are
    /// pure observability — nothing in the engine reads them back).
    metrics: Option<InteractionMetrics>,
}

impl<P: EnumerableProtocol> PerStepEngine<P> {
    /// Creates a per-step engine from a per-agent configuration.
    ///
    /// # Supported populations
    ///
    /// Any `n ≥ 2` that fits in memory — but the engine *is* `O(n)` in both
    /// memory (the per-agent state vector and its encoded mirror) and time
    /// (every interaction is executed), so it is practical up to `n ≈ 10⁶`;
    /// use the count engines ([`BatchSimulation`],
    /// [`MultiBatchSimulation`], [`AdaptiveSimulation`]) beyond that.
    ///
    /// # Panics
    ///
    /// Panics if the configuration size does not match
    /// [`crate::Protocol::population_size`].
    pub fn new(protocol: P, config: Configuration<P::State>, seed: u64) -> Self {
        let encoded: Vec<usize> = config.iter().map(|s| protocol.encode(s)).collect();
        let mut counts = vec![0u64; protocol.num_states()];
        for &index in &encoded {
            counts[index] += 1;
        }
        PerStepEngine {
            sim: Simulation::new(protocol, config, seed),
            counts: CountConfiguration::from_counts(counts),
            encoded,
            check_every: 1,
            telemetry: Telemetry::disabled(),
            metrics: None,
        }
    }

    /// Attaches a [`Telemetry`] handle. An enabled handle also switches on
    /// the per-agent [`InteractionMetrics`] (only this engine can maintain
    /// them — see [`SimulationEngine::predicate_granularity`]).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.metrics = telemetry
            .is_enabled()
            .then(|| InteractionMetrics::new(self.encoded.len()));
        self.telemetry = telemetry;
    }

    /// The attached [`Telemetry`] handle (disabled unless
    /// [`Self::set_telemetry`] was called with an enabled one).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The per-agent interaction load recorded so far — `Some` only while an
    /// enabled telemetry handle is attached. The count engines cannot offer
    /// this at any price; see
    /// [`SimulationEngine::predicate_granularity`].
    pub fn interaction_metrics(&self) -> Option<&InteractionMetrics> {
        self.metrics.as_ref()
    }

    /// Creates a per-step engine from the protocol's clean initial
    /// configuration.
    pub fn clean(protocol: P, seed: u64) -> Self
    where
        P: CleanInit,
    {
        let config = Configuration::clean(&protocol);
        Self::new(protocol, config, seed)
    }

    /// Sets the predicate check stride for `run_until` (clamped to ≥ 1):
    /// hitting times overshoot by less than the stride.
    pub fn with_check_every(mut self, every: u64) -> Self {
        self.check_every = every.max(1);
        self
    }

    /// The wrapped per-agent simulation (per-agent metrics, exact
    /// configuration access).
    pub fn simulation(&self) -> &Simulation<P> {
        &self.sim
    }

    /// Executes one interaction and updates the count mirror. Returns
    /// `false` when the scheduler is exhausted.
    fn step_once(&mut self) -> bool {
        let Some(pair) = self.sim.step() else {
            return false;
        };
        self.telemetry.count(Counter::PerStepInteractions, 1);
        if let Some(metrics) = &mut self.metrics {
            metrics.record(pair.initiator, pair.responder);
        }
        let (i, j) = (pair.initiator.index(), pair.responder.index());
        let (new_u, new_v) = {
            let protocol = self.sim.protocol();
            let config = self.sim.configuration();
            (
                protocol.encode(config.state(pair.initiator)),
                protocol.encode(config.state(pair.responder)),
            )
        };
        let (old_u, old_v) = (self.encoded[i], self.encoded[j]);
        if (new_u, new_v) != (old_u, old_v) {
            self.counts
                .ensure_num_states(self.sim.protocol().num_states());
            self.counts.apply_transition((old_u, old_v), (new_u, new_v));
            self.encoded[i] = new_u;
            self.encoded[j] = new_v;
        }
        true
    }

    /// Pushes the current per-agent load summary into the telemetry report
    /// (a no-op unless metrics are being maintained).
    fn flush_balance(&self) {
        if let Some(metrics) = &self.metrics {
            self.telemetry.record_balance(BalanceSummary {
                n: self.encoded.len() as u64,
                total: metrics.total(),
                min: metrics.min(),
                max: metrics.max(),
                max_imbalance: metrics.max_imbalance(),
            });
        }
    }

    /// Executes up to `budget` interactions unconditionally; returns the
    /// number executed (less only if the scheduler ran out).
    pub fn run(&mut self, budget: u64) -> u64 {
        let _span = self.telemetry.span(SpanKind::PerStepRun);
        let mut done = 0;
        while done < budget && self.step_once() {
            done += 1;
        }
        self.flush_balance();
        done
    }

    /// Runs until `pred` holds for the count mirror or `budget` interactions
    /// have been executed by this call, checking `pred` every
    /// [`PerStepEngine::with_check_every`] interactions.
    pub fn run_until<F>(&mut self, mut pred: F, budget: u64) -> RunOutcome
    where
        F: FnMut(&CountConfiguration) -> bool,
    {
        let _span = self.telemetry.span(SpanKind::PerStepRun);
        let mut done = 0u64;
        loop {
            self.telemetry.count(Counter::PerStepStrideChecks, 1);
            if pred(&self.counts) {
                self.flush_balance();
                return RunOutcome {
                    interactions: done,
                    satisfied: true,
                };
            }
            if done >= budget {
                self.flush_balance();
                return RunOutcome {
                    interactions: done,
                    satisfied: false,
                };
            }
            let chunk = self.check_every.min(budget - done);
            let mut ran = 0u64;
            while ran < chunk && self.step_once() {
                ran += 1;
            }
            done += ran;
            if ran < chunk {
                // Scheduler exhausted mid-chunk: one final observation.
                self.telemetry.count(Counter::PerStepStrideChecks, 1);
                let satisfied = pred(&self.counts);
                self.flush_balance();
                return RunOutcome {
                    interactions: done,
                    satisfied,
                };
            }
        }
    }

    /// Measures the stabilization time of `pred` with the exact semantics of
    /// [`Simulation::measure_stabilization`] (absolute
    /// [`StabilizationResult::stabilized_at`], `opts.check_every` honored),
    /// evaluated on the count mirror.
    pub fn measure_stabilization<F>(
        &mut self,
        mut pred: F,
        opts: StabilizationOptions,
    ) -> StabilizationResult
    where
        F: FnMut(&CountConfiguration) -> bool,
    {
        let _span = self.telemetry.span(SpanKind::PerStepRun);
        let n = self.counts.population() as usize;
        let start = self.sim.interactions();
        let mut detector = StabilizationDetector::new();
        detector.observe(start, pred(&self.counts));
        let mut executed = 0u64;
        while executed < opts.budget {
            if !self.step_once() {
                break;
            }
            executed += 1;
            if executed % opts.check_every == 0 {
                self.telemetry.count(Counter::PerStepStrideChecks, 1);
                detector.observe(start + executed, pred(&self.counts));
                if detector.consecutive(start + executed) >= opts.confirm_window {
                    break;
                }
            }
        }
        detector.observe(start + executed, pred(&self.counts));
        self.flush_balance();
        StabilizationResult {
            interactions: executed,
            stabilized_at: detector.stabilized_at(),
            n,
        }
    }
}

impl<P: EnumerableProtocol> SimulationEngine<P> for PerStepEngine<P> {
    fn protocol(&self) -> &P {
        self.sim.protocol()
    }
    fn counts(&self) -> &CountConfiguration {
        &self.counts
    }
    fn to_configuration(&self) -> Configuration<P::State> {
        Configuration::from_states(self.sim.configuration().as_slice().to_vec())
    }
    fn interactions(&self) -> u64 {
        self.sim.interactions()
    }
    fn predicate_granularity(&self) -> PredicateGranularity {
        if self.check_every <= 1 {
            PredicateGranularity::Interaction
        } else {
            PredicateGranularity::Every(self.check_every)
        }
    }
    fn run(&mut self, budget: u64) -> u64 {
        PerStepEngine::run(self, budget)
    }
    fn run_until(
        &mut self,
        pred: &mut dyn FnMut(&CountConfiguration) -> bool,
        budget: u64,
    ) -> RunOutcome {
        PerStepEngine::run_until(self, |c| pred(c), budget)
    }
    fn measure_stabilization(
        &mut self,
        pred: &mut dyn FnMut(&CountConfiguration) -> bool,
        opts: StabilizationOptions,
    ) -> StabilizationResult {
        PerStepEngine::measure_stabilization(self, |c| pred(c), opts)
    }
}

/// Switching policy of the [`AdaptiveSimulation`].
///
/// The policy is a hysteresis band on the *active-interaction fraction* —
/// the probability that a uniformly random ordered pair changes state. The
/// batched engine's cost per interaction is proportional to that fraction
/// (it pays only for state changes), while the multi-batch engine's is a
/// constant `≈ 1/(0.63·√n)` epoch share — so high activity favors
/// multi-batch and silence favors batched. Decisions depend only on
/// simulation state (never on wall-clock time), so adaptive runs stay
/// deterministic under a fixed seed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct AdaptiveConfig {
    /// Hand off multi-batch → batched when the active fraction drops below
    /// this.
    pub low_activity: f64,
    /// Hand off batched → multi-batch when the active fraction rises above
    /// this. Must be strictly greater than
    /// [`AdaptiveConfig::low_activity`] (the gap is the hysteresis band
    /// that prevents thrashing).
    pub high_activity: f64,
    /// Interactions between activity measurements (each measurement costs
    /// O(#occupied states²) silence queries in multi-batch mode, O(1) in
    /// batched mode). `0` resolves to `max(n, 1024)` at construction.
    pub check_interval: u64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            low_activity: 0.02,
            high_activity: 0.08,
            check_interval: 0,
        }
    }
}

impl AdaptiveConfig {
    /// Resolves the auto values against a population size and validates the
    /// band.
    fn try_resolved(self, n: u64) -> Result<Self, SimError> {
        if self.low_activity >= self.high_activity {
            return Err(SimError::InvalidParameters {
                reason: "hysteresis band requires low_activity < high_activity".into(),
            });
        }
        Ok(AdaptiveConfig {
            check_interval: if self.check_interval == 0 {
                n.max(1024)
            } else {
                self.check_interval
            },
            ..self
        })
    }
}

/// The currently active engine of an [`AdaptiveSimulation`].
#[derive(Debug)]
enum ActiveEngine<P: EnumerableProtocol> {
    // Boxed so the enum stays pointer-sized regardless of how wide the
    // engines' inline state (u128 Fenwick bookkeeping and friends) grows.
    Batched(Box<BatchSimulation<P>>),
    MultiBatch(Box<MultiBatchSimulation<P>>),
    /// Transient state during a handoff only; observable states are always
    /// one of the two engines.
    Swapping,
}

/// The `Auto` engine tier: multi-batch while activity is high, batched once
/// silence dominates.
///
/// The engine measures the active-interaction fraction every
/// [`AdaptiveConfig::check_interval`] interactions and hands the count
/// vector between [`MultiBatchSimulation`] and [`BatchSimulation`] at the
/// configured hysteresis thresholds. Handoffs are **exact**: both engines
/// truncate their batches at arbitrary interaction budgets without biasing
/// the schedule (geometric silent runs are memoryless, epoch prefixes are
/// exchangeable), so the stitched run has exactly the uniform-scheduler
/// distribution, and [`AdaptiveSimulation::interactions`] /
/// [`StabilizationResult::stabilized_at`] stay absolute across handoffs.
///
/// The per-handoff cost is one `O(#occupied states²)` pair-index rebuild
/// (when entering batched mode); the hysteresis band keeps handoffs rare.
/// Each retired engine's RNG is dropped and the successor's is seeded as
/// `derive_seed(seed, #handoffs)`, so a fixed seed still reproduces the run
/// bit-for-bit.
#[derive(Debug)]
pub struct AdaptiveSimulation<P: EnumerableProtocol> {
    inner: ActiveEngine<P>,
    /// Master seed; engine `k` (0-based by handoff count) runs under
    /// `derive_seed(seed, k)`.
    seed: u64,
    handoffs: u64,
    /// Interactions executed by retired engines — added to the active
    /// engine's counter to keep absolute indices.
    base_interactions: u64,
    config: AdaptiveConfig,
    /// Interactions until the next activity measurement.
    until_check: u64,
    /// Observability handle; cloned into every inner engine so per-mode
    /// counters and spans attribute themselves, and the handoff event
    /// stream records each swap at its absolute interaction index.
    telemetry: Telemetry,
}

impl<P: EnumerableProtocol> AdaptiveSimulation<P> {
    /// Creates an adaptive simulation from an explicit count configuration
    /// with the default [`AdaptiveConfig`].
    ///
    /// # Supported populations
    ///
    /// `2 ≤ n ≤ 2⁶²` ([`crate::count_config::MAX_POPULATION`]) — the
    /// adaptive tier accepts exactly what its two inner count engines
    /// accept, and inherits their `O(#occupied states + √n)` memory bound.
    ///
    /// # Panics
    ///
    /// Panics on any input [`Self::try_with_config`] rejects.
    pub fn new(protocol: P, counts: CountConfiguration, seed: u64) -> Self {
        Self::with_config(protocol, counts, seed, AdaptiveConfig::default())
    }

    /// Creates an adaptive simulation with an explicit switching policy,
    /// returning a typed error on invalid input. The initial engine is
    /// chosen by measuring the initial activity against
    /// [`AdaptiveConfig::high_activity`].
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidParameters`] for population/state-space mismatches
    /// (as for [`BatchSimulation::try_new`]) or an inverted
    /// [`AdaptiveConfig`] hysteresis band;
    /// [`SimError::UnsupportedPopulation`] past the engine bound.
    pub fn try_with_config(
        protocol: P,
        counts: CountConfiguration,
        seed: u64,
        config: AdaptiveConfig,
    ) -> Result<Self, SimError> {
        crate::count_config::validate_engine_inputs(&protocol, &counts)?;
        let config = config.try_resolved(counts.population())?;
        let fraction = measured_active_fraction(&protocol, &counts);
        let engine_seed = derive_seed(seed, 0);
        let inner = if fraction > config.high_activity {
            ActiveEngine::MultiBatch(Box::new(MultiBatchSimulation::try_new(
                protocol,
                counts,
                engine_seed,
            )?))
        } else {
            ActiveEngine::Batched(Box::new(BatchSimulation::try_new(
                protocol,
                counts,
                engine_seed,
            )?))
        };
        Ok(AdaptiveSimulation {
            inner,
            seed,
            handoffs: 0,
            base_interactions: 0,
            until_check: config.check_interval,
            config,
            telemetry: Telemetry::disabled(),
        })
    }

    /// Attaches a [`Telemetry`] handle, cloning it into the currently active
    /// inner engine (future handoffs hand it on automatically). An enabled
    /// handle records an `engine_selected` event for the engine running now,
    /// with the activity measurement that selected it re-taken.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry.clone();
        match &mut self.inner {
            ActiveEngine::Batched(sim) => sim.set_telemetry(telemetry),
            ActiveEngine::MultiBatch(sim) => sim.set_telemetry(telemetry),
            ActiveEngine::Swapping => unreachable!("engine mid-handoff"),
        }
        if self.telemetry.is_enabled() {
            self.telemetry
                .record_engine_selected(self.current_kind().label(), self.active_fraction());
        }
    }

    /// The attached [`Telemetry`] handle (disabled unless
    /// [`Self::set_telemetry`] was called with an enabled one).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Creates an adaptive simulation with an explicit switching policy.
    ///
    /// # Panics
    ///
    /// Panics on any input [`Self::try_with_config`] rejects.
    pub fn with_config(
        protocol: P,
        counts: CountConfiguration,
        seed: u64,
        config: AdaptiveConfig,
    ) -> Self {
        // lint:allow(panic): documented panicking wrapper; message pinned by should_panic test
        Self::try_with_config(protocol, counts, seed, config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates an adaptive simulation from a per-agent configuration.
    ///
    /// Supports the same population range as [`Self::try_with_config`],
    /// though the per-agent input is itself `O(n)` — start from counts (or
    /// [`Self::clean`]) for very large populations.
    pub fn from_configuration(protocol: P, config: &Configuration<P::State>, seed: u64) -> Self {
        let counts = CountConfiguration::from_configuration(&protocol, config);
        Self::new(protocol, counts, seed)
    }

    /// Creates an adaptive simulation from the protocol's clean initial
    /// configuration.
    ///
    /// Builds the counts directly via
    /// [`CountConfiguration::from_clean_init`] — no `O(n)` per-agent vector
    /// is ever materialized. Supports the same population range as
    /// [`Self::try_with_config`].
    pub fn clean(protocol: P, seed: u64) -> Self
    where
        P: CleanInit,
    {
        let counts = CountConfiguration::from_clean_init(&protocol);
        Self::new(protocol, counts, seed)
    }

    /// The engine currently executing interactions
    /// ([`EngineKind::Batched`] or [`EngineKind::MultiBatch`]).
    pub fn current_kind(&self) -> EngineKind {
        match &self.inner {
            ActiveEngine::Batched(_) => EngineKind::Batched,
            ActiveEngine::MultiBatch(_) => EngineKind::MultiBatch,
            ActiveEngine::Swapping => unreachable!("engine mid-handoff"),
        }
    }

    /// Number of engine handoffs so far.
    pub fn handoffs(&self) -> u64 {
        self.handoffs
    }

    /// The current active-interaction fraction — exact in batched mode,
    /// recomputed from the counts in multi-batch mode.
    pub fn active_fraction(&self) -> f64 {
        match &self.inner {
            ActiveEngine::Batched(sim) => sim.active_fraction(),
            ActiveEngine::MultiBatch(sim) => measured_active_fraction(sim.protocol(), sim.counts()),
            ActiveEngine::Swapping => unreachable!("engine mid-handoff"),
        }
    }

    /// The switching policy in effect (with auto values resolved).
    pub fn adaptive_config(&self) -> AdaptiveConfig {
        self.config
    }

    /// Hands the protocol and count vector to the other engine.
    fn swap(&mut self) {
        // The fraction that motivated this swap, re-measured here only when
        // someone is listening (the measurement is observability, never
        // control flow — `maybe_switch` decided already).
        let fraction = if self.telemetry.is_enabled() {
            self.active_fraction()
        } else {
            0.0
        };
        let retired = std::mem::replace(&mut self.inner, ActiveEngine::Swapping);
        self.handoffs += 1;
        let next_seed = derive_seed(self.seed, self.handoffs);
        let (from, to);
        self.inner = match retired {
            ActiveEngine::Batched(sim) => {
                self.base_interactions += sim.interactions();
                let (protocol, counts) = sim.into_parts();
                let mut next = MultiBatchSimulation::new(protocol, counts, next_seed);
                next.set_telemetry(self.telemetry.clone());
                (from, to) = (EngineKind::Batched, EngineKind::MultiBatch);
                ActiveEngine::MultiBatch(Box::new(next))
            }
            ActiveEngine::MultiBatch(sim) => {
                self.base_interactions += sim.interactions();
                let (protocol, counts) = sim.into_parts();
                let mut next = BatchSimulation::new(protocol, counts, next_seed);
                next.set_telemetry(self.telemetry.clone());
                (from, to) = (EngineKind::MultiBatch, EngineKind::Batched);
                ActiveEngine::Batched(Box::new(next))
            }
            ActiveEngine::Swapping => unreachable!("engine mid-handoff"),
        };
        self.telemetry.count(Counter::AdaptiveHandoffs, 1);
        self.telemetry.record_handoff(
            self.handoffs,
            self.base_interactions,
            from.label(),
            to.label(),
            fraction,
        );
    }

    /// Measures activity and switches engines if it crossed the band.
    fn maybe_switch(&mut self) {
        self.telemetry.count(Counter::AdaptiveActivityChecks, 1);
        let fraction = self.active_fraction();
        let should_swap = match &self.inner {
            ActiveEngine::Batched(_) => fraction > self.config.high_activity,
            ActiveEngine::MultiBatch(_) => fraction < self.config.low_activity,
            ActiveEngine::Swapping => unreachable!("engine mid-handoff"),
        };
        if should_swap {
            self.swap();
        }
    }

    /// Runs the activity check if its interval elapsed and returns the next
    /// chunk size toward `remaining`.
    fn next_chunk(&mut self, remaining: u64) -> u64 {
        if self.until_check == 0 {
            self.maybe_switch();
            self.until_check = self.config.check_interval;
        }
        remaining.min(self.until_check)
    }

    /// Number of interactions executed since construction — absolute across
    /// handoffs (retired engines' interactions included).
    pub fn interactions(&self) -> u64 {
        let inner = match &self.inner {
            ActiveEngine::Batched(sim) => sim.interactions(),
            ActiveEngine::MultiBatch(sim) => sim.interactions(),
            ActiveEngine::Swapping => unreachable!("engine mid-handoff"),
        };
        self.base_interactions + inner
    }

    /// The current configuration, as state counts.
    pub fn counts(&self) -> &CountConfiguration {
        match &self.inner {
            ActiveEngine::Batched(sim) => sim.counts(),
            ActiveEngine::MultiBatch(sim) => sim.counts(),
            ActiveEngine::Swapping => unreachable!("engine mid-handoff"),
        }
    }

    /// The protocol being simulated.
    pub fn protocol(&self) -> &P {
        match &self.inner {
            ActiveEngine::Batched(sim) => sim.protocol(),
            ActiveEngine::MultiBatch(sim) => sim.protocol(),
            ActiveEngine::Swapping => unreachable!("engine mid-handoff"),
        }
    }

    /// Parallel time elapsed so far (interactions divided by `n`).
    pub fn parallel_time(&self) -> f64 {
        self.interactions() as f64 / self.counts().population() as f64
    }

    /// Executes exactly `budget` interactions, measuring activity (and
    /// possibly switching engines) every
    /// [`AdaptiveConfig::check_interval`] interactions.
    pub fn run(&mut self, budget: u64) -> u64 {
        let mut done = 0u64;
        while done < budget {
            let chunk = self.next_chunk(budget - done);
            match &mut self.inner {
                ActiveEngine::Batched(sim) => {
                    sim.run(chunk);
                }
                ActiveEngine::MultiBatch(sim) => {
                    sim.run(chunk);
                }
                ActiveEngine::Swapping => unreachable!("engine mid-handoff"),
            }
            done += chunk;
            self.until_check -= chunk;
        }
        budget
    }

    /// Runs until `pred` holds or `budget` interactions have been executed
    /// by this call. The predicate is observed at the *active* engine's
    /// granularity (exact per state change in batched mode, per epoch commit
    /// in multi-batch mode).
    pub fn run_until<F>(&mut self, mut pred: F, budget: u64) -> RunOutcome
    where
        F: FnMut(&CountConfiguration) -> bool,
    {
        self.run_until_dyn(&mut pred, budget)
    }

    fn run_until_dyn(
        &mut self,
        pred: &mut dyn FnMut(&CountConfiguration) -> bool,
        budget: u64,
    ) -> RunOutcome {
        let mut done = 0u64;
        loop {
            let chunk = self.next_chunk(budget - done);
            let out = match &mut self.inner {
                ActiveEngine::Batched(sim) => sim.run_until(|c| pred(c), chunk),
                ActiveEngine::MultiBatch(sim) => sim.run_until(|c| pred(c), chunk),
                ActiveEngine::Swapping => unreachable!("engine mid-handoff"),
            };
            done += out.interactions;
            self.until_check -= out.interactions;
            if out.satisfied {
                return RunOutcome {
                    interactions: done,
                    satisfied: true,
                };
            }
            if done >= budget {
                return RunOutcome {
                    interactions: done,
                    satisfied: false,
                };
            }
        }
    }

    /// Measures the stabilization time of `pred` with the shared engine
    /// semantics: [`StabilizationResult::stabilized_at`] is absolute across
    /// handoffs, and the run stops early once the predicate has held for
    /// `opts.confirm_window` consecutive interactions (`opts.check_every` is
    /// ignored, as for the count engines).
    ///
    /// Internally this alternates a *seek* phase (`run_until(pred)`) and a
    /// *confirm* phase (`run_until(!pred)` capped by the window), so both
    /// phases run under whichever engine the activity measurements favor —
    /// e.g. the long silent confirmation window of a stabilized protocol is
    /// consumed by the batched engine's geometric skipping even if the
    /// pre-stabilization phase ran multi-batch.
    pub fn measure_stabilization<F>(
        &mut self,
        mut pred: F,
        opts: StabilizationOptions,
    ) -> StabilizationResult
    where
        F: FnMut(&CountConfiguration) -> bool,
    {
        self.measure_stabilization_dyn(&mut pred, opts)
    }

    fn measure_stabilization_dyn(
        &mut self,
        pred: &mut dyn FnMut(&CountConfiguration) -> bool,
        opts: StabilizationOptions,
    ) -> StabilizationResult {
        let n = self.counts().population() as usize;
        let start = self.interactions();
        let mut detector = StabilizationDetector::new();
        let mut executed = 0u64;
        loop {
            // Seek: run until the predicate is first observed true.
            let out = self.run_until_dyn(pred, opts.budget - executed);
            executed += out.interactions;
            if !out.satisfied {
                detector.observe(start + executed, false);
                break;
            }
            let candidate = start + executed;
            detector.observe(candidate, true);
            // Confirm: run until the predicate is observed violated, for at
            // most the remaining confirmation window.
            let window = opts.confirm_window.min(opts.budget - executed);
            let violated = self.run_until_dyn(&mut |c| !pred(c), window);
            executed += violated.interactions;
            if violated.satisfied {
                detector.observe(start + executed, false);
                if executed >= opts.budget {
                    break;
                }
                continue;
            }
            // Held through the window (or to the end of the budget).
            detector.observe(start + executed, true);
            break;
        }
        StabilizationResult {
            interactions: executed,
            stabilized_at: detector.stabilized_at(),
            n,
        }
    }
}

impl<P: EnumerableProtocol> SimulationEngine<P> for AdaptiveSimulation<P> {
    fn protocol(&self) -> &P {
        AdaptiveSimulation::protocol(self)
    }
    fn counts(&self) -> &CountConfiguration {
        AdaptiveSimulation::counts(self)
    }
    fn to_configuration(&self) -> Configuration<P::State> {
        self.counts().to_configuration(self.protocol())
    }
    fn interactions(&self) -> u64 {
        AdaptiveSimulation::interactions(self)
    }
    fn predicate_granularity(&self) -> PredicateGranularity {
        match &self.inner {
            ActiveEngine::Batched(_) => PredicateGranularity::Interaction,
            ActiveEngine::MultiBatch(sim) => PredicateGranularity::EpochCommit {
                expected_interactions: expected_epoch_length(sim.counts().population()),
            },
            ActiveEngine::Swapping => unreachable!("engine mid-handoff"),
        }
    }
    fn run(&mut self, budget: u64) -> u64 {
        AdaptiveSimulation::run(self, budget)
    }
    fn run_until(
        &mut self,
        pred: &mut dyn FnMut(&CountConfiguration) -> bool,
        budget: u64,
    ) -> RunOutcome {
        self.run_until_dyn(pred, budget)
    }
    fn measure_stabilization(
        &mut self,
        pred: &mut dyn FnMut(&CountConfiguration) -> bool,
        opts: StabilizationOptions,
    ) -> StabilizationResult {
        self.measure_stabilization_dyn(pred, opts)
    }
}

/// How a [`SimBuilder`] initializes the population.
#[derive(Debug)]
enum BuilderInit<S> {
    Clean,
    PerAgent(Configuration<S>),
    Counts(CountConfiguration),
}

/// One constructor for every engine tier: protocol + init + seed + kind →
/// boxed [`SimulationEngine`].
///
/// Replaces the per-engine `new` / `from_configuration` / `clean`
/// constructor trio at call sites (the inherent constructors remain as the
/// primitive layer). Defaults: clean initial configuration, seed 0,
/// [`EngineKind::Auto`].
///
/// ```
/// use ppsim::engine::{EngineKind, SimBuilder, SimulationEngine};
/// use ppsim::epidemic::{OneWayEpidemic, INFORMED};
///
/// let mut sim = SimBuilder::new(OneWayEpidemic::new(512, 1))
///     .kind(EngineKind::Batched)
///     .seed(42)
///     .build();
/// let out = sim.run_until(&mut |c| c.count(INFORMED) == c.population(), u64::MAX);
/// assert!(out.satisfied);
/// ```
#[derive(Debug)]
pub struct SimBuilder<P: EnumerableProtocol> {
    protocol: P,
    seed: u64,
    kind: EngineKind,
    init: BuilderInit<P::State>,
    check_every: u64,
    adaptive: AdaptiveConfig,
    telemetry: Telemetry,
}

impl<P: EnumerableProtocol + 'static> SimBuilder<P> {
    /// Starts a builder for `protocol` with the default clean init, seed 0
    /// and [`EngineKind::Auto`].
    pub fn new(protocol: P) -> Self {
        SimBuilder {
            protocol,
            seed: 0,
            kind: EngineKind::Auto,
            init: BuilderInit::Clean,
            check_every: 1,
            adaptive: AdaptiveConfig::default(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects the engine tier.
    pub fn kind(mut self, kind: EngineKind) -> Self {
        self.kind = kind;
        self
    }

    /// Initializes from an explicit per-agent configuration instead of the
    /// protocol's clean initial configuration.
    pub fn config(mut self, config: Configuration<P::State>) -> Self {
        self.init = BuilderInit::PerAgent(config);
        self
    }

    /// Initializes from an explicit count configuration (materialized into
    /// per-agent form if the per-step engine is selected).
    pub fn counts(mut self, counts: CountConfiguration) -> Self {
        self.init = BuilderInit::Counts(counts);
        self
    }

    /// Sets the per-step engine's predicate check stride (ignored by the
    /// other tiers; see [`PredicateGranularity::Every`]).
    pub fn check_every(mut self, every: u64) -> Self {
        self.check_every = every.max(1);
        self
    }

    /// Sets the [`EngineKind::Auto`] switching policy (ignored by the fixed
    /// tiers).
    pub fn adaptive_config(mut self, config: AdaptiveConfig) -> Self {
        self.adaptive = config;
        self
    }

    /// Attaches a [`Telemetry`] handle to the engine being built.
    ///
    /// Keep a clone: after the run, [`Telemetry::report`] on your copy holds
    /// the counters, histograms, spans, and the deterministic event stream.
    /// The default (a disabled handle) records nothing and costs nothing —
    /// trajectories and RNG streams are bit-identical either way.
    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The chosen init as a per-agent configuration.
    fn per_agent_config(protocol: &P, init: BuilderInit<P::State>) -> Configuration<P::State>
    where
        P: CleanInit,
    {
        match init {
            BuilderInit::Clean => Configuration::clean(protocol),
            BuilderInit::PerAgent(config) => config,
            BuilderInit::Counts(counts) => counts.to_configuration(protocol),
        }
    }

    /// The chosen init as a count configuration.
    ///
    /// The clean init goes through the flat
    /// [`CountConfiguration::from_clean_init`] path — never materializing an
    /// `O(n)` per-agent vector — so count-engine builds stay
    /// `O(#occupied states)` in memory at any population size.
    fn count_config(protocol: &P, init: BuilderInit<P::State>) -> CountConfiguration
    where
        P: CleanInit,
    {
        match init {
            BuilderInit::Counts(counts) => counts,
            BuilderInit::Clean => CountConfiguration::from_clean_init(protocol),
            BuilderInit::PerAgent(config) => {
                CountConfiguration::from_configuration(protocol, &config)
            }
        }
    }

    /// Builds the selected engine behind the [`SimulationEngine`] trait.
    ///
    /// This is the **only** place in the workspace that dispatches over
    /// [`EngineKind`]; everything downstream works through the trait.
    pub fn build(self) -> Box<dyn SimulationEngine<P>>
    where
        P: CleanInit,
    {
        let SimBuilder {
            protocol,
            seed,
            kind,
            init,
            check_every,
            adaptive,
            telemetry,
        } = self;
        match kind {
            EngineKind::PerStep => {
                let config = Self::per_agent_config(&protocol, init);
                let mut sim =
                    PerStepEngine::new(protocol, config, seed).with_check_every(check_every);
                sim.set_telemetry(telemetry);
                Box::new(sim)
            }
            EngineKind::Batched => {
                let counts = Self::count_config(&protocol, init);
                let mut sim = BatchSimulation::new(protocol, counts, seed);
                sim.set_telemetry(telemetry);
                Box::new(sim)
            }
            EngineKind::MultiBatch => {
                let counts = Self::count_config(&protocol, init);
                let mut sim = MultiBatchSimulation::new(protocol, counts, seed);
                sim.set_telemetry(telemetry);
                Box::new(sim)
            }
            EngineKind::Auto => {
                let counts = Self::count_config(&protocol, init);
                let mut sim = AdaptiveSimulation::with_config(protocol, counts, seed, adaptive);
                sim.set_telemetry(telemetry);
                Box::new(sim)
            }
        }
    }

    /// Builds the [`EngineKind::Auto`] engine as its concrete type (for
    /// callers that want handoff introspection — the boxed
    /// [`SimBuilder::build`] surface does not expose it). The selected
    /// [`SimBuilder::kind`] is ignored.
    pub fn build_adaptive(self) -> AdaptiveSimulation<P>
    where
        P: CleanInit,
    {
        let SimBuilder {
            protocol,
            seed,
            init,
            adaptive,
            telemetry,
            ..
        } = self;
        let counts = Self::count_config(&protocol, init);
        let mut sim = AdaptiveSimulation::with_config(protocol, counts, seed, adaptive);
        sim.set_telemetry(telemetry);
        sim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epidemic::{OneWayEpidemic, TwoWayEpidemic, INFORMED};
    use crate::protocol::Protocol;

    fn informed_everywhere(c: &CountConfiguration) -> bool {
        c.count(INFORMED) == c.population()
    }

    #[test]
    fn engine_kind_labels_and_parse_round_trip() {
        let kinds = [
            EngineKind::PerStep,
            EngineKind::Batched,
            EngineKind::MultiBatch,
            EngineKind::Auto,
        ];
        let mut labels: Vec<&str> = kinds.iter().map(|k| k.label()).collect();
        for (kind, label) in kinds.iter().zip(&labels) {
            assert_eq!(EngineKind::parse(label), Some(*kind));
        }
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), kinds.len(), "labels must be distinct");
        assert_eq!(EngineKind::parse("sequential"), None);
    }

    #[test]
    fn every_kind_completes_the_epidemic_through_the_trait() {
        for kind in [
            EngineKind::PerStep,
            EngineKind::Batched,
            EngineKind::MultiBatch,
            EngineKind::Auto,
        ] {
            let mut sim = SimBuilder::new(OneWayEpidemic::new(256, 1))
                .kind(kind)
                .seed(9)
                .build();
            let out = sim.run_until(&mut informed_everywhere, u64::MAX);
            assert!(out.satisfied, "{kind:?}");
            assert_eq!(sim.counts().count(INFORMED), 256, "{kind:?}");
            assert_eq!(sim.interactions(), out.interactions, "{kind:?}");
            assert!(sim.parallel_time() > 0.0, "{kind:?}");
            assert_eq!(sim.to_configuration().len(), 256, "{kind:?}");
            assert_eq!(sim.protocol().population_size(), 256, "{kind:?}");
        }
    }

    #[test]
    fn builder_matches_the_direct_constructors_trajectory_for_fixed_kinds() {
        // The builder must not perturb RNG streams: a `Batched` build from a
        // clean init is the same run as `BatchSimulation::clean`.
        let mut direct = BatchSimulation::clean(OneWayEpidemic::new(256, 1), 42);
        let direct_out = direct.run_until(|c| c.count(INFORMED) == c.population(), u64::MAX);
        let mut built = SimBuilder::new(OneWayEpidemic::new(256, 1))
            .kind(EngineKind::Batched)
            .seed(42)
            .build();
        let built_out = built.run_until(&mut informed_everywhere, u64::MAX);
        assert_eq!(direct_out.interactions, built_out.interactions);

        let mut direct = MultiBatchSimulation::clean(OneWayEpidemic::new(256, 1), 42);
        let direct_out = direct.run_until(|c| c.count(INFORMED) == c.population(), u64::MAX);
        let mut built = SimBuilder::new(OneWayEpidemic::new(256, 1))
            .kind(EngineKind::MultiBatch)
            .seed(42)
            .build();
        let built_out = built.run_until(&mut informed_everywhere, u64::MAX);
        assert_eq!(direct_out.interactions, built_out.interactions);
    }

    #[test]
    fn per_step_engine_mirrors_the_bare_simulation_exactly() {
        // Same seed, same trajectory: the count mirror is pure bookkeeping.
        let protocol = OneWayEpidemic::new(128, 1);
        let config = Configuration::clean(&protocol);
        let mut bare = Simulation::new(protocol, config, 11);
        let bare_out = bare.run_until(|c| c.iter().all(|s| *s), u64::MAX);

        let mut mirrored = PerStepEngine::clean(OneWayEpidemic::new(128, 1), 11);
        let out = mirrored.run_until(informed_everywhere, u64::MAX);
        assert_eq!(out.interactions, bare_out.interactions);
        assert_eq!(mirrored.counts().count(INFORMED), 128);
    }

    #[test]
    fn per_step_mirror_stays_consistent_with_a_rebuild() {
        let mut sim = PerStepEngine::clean(TwoWayEpidemic::new(64, 3), 5);
        for _ in 0..20 {
            sim.run(50);
            let rebuilt = CountConfiguration::from_configuration(
                sim.simulation().protocol(),
                sim.simulation().configuration(),
            );
            assert_eq!(sim.counts(), &rebuilt, "mirror drifted");
        }
    }

    #[test]
    fn per_step_check_every_rounds_hitting_times_up() {
        let exact = PerStepEngine::clean(OneWayEpidemic::new(64, 1), 3)
            .run_until(informed_everywhere, u64::MAX);
        let coarse = PerStepEngine::clean(OneWayEpidemic::new(64, 1), 3)
            .with_check_every(100)
            .run_until(informed_everywhere, u64::MAX);
        assert!(coarse.satisfied);
        assert!(coarse.interactions >= exact.interactions);
        assert!(coarse.interactions < exact.interactions + 100);
        assert_eq!(coarse.interactions % 100, 0);
    }

    #[test]
    fn granularities_match_the_documented_table() {
        let batched = SimBuilder::new(OneWayEpidemic::new(64, 1))
            .kind(EngineKind::Batched)
            .build();
        assert_eq!(
            batched.predicate_granularity(),
            PredicateGranularity::Interaction
        );
        let per_step = SimBuilder::new(OneWayEpidemic::new(64, 1))
            .kind(EngineKind::PerStep)
            .check_every(32)
            .build();
        assert_eq!(
            per_step.predicate_granularity(),
            PredicateGranularity::Every(32)
        );
        let multibatch = SimBuilder::new(OneWayEpidemic::new(10_000, 1))
            .kind(EngineKind::MultiBatch)
            .build();
        match multibatch.predicate_granularity() {
            PredicateGranularity::EpochCommit {
                expected_interactions,
            } => {
                // ≈ 0.63·√10000 ≈ 63.
                assert!((60..=70).contains(&expected_interactions));
            }
            g => panic!("unexpected granularity {g:?}"),
        }
    }

    /// A forced-switching config: thresholds inside the epidemic's activity
    /// range and a tight check interval, so a sparse epidemic hands off
    /// batched → multi-batch → batched within one run.
    fn switchy() -> AdaptiveConfig {
        AdaptiveConfig {
            low_activity: 0.05,
            high_activity: 0.10,
            check_interval: 64,
        }
    }

    #[test]
    fn adaptive_engine_hands_off_in_both_directions() {
        let mut sim = AdaptiveSimulation::with_config(
            OneWayEpidemic::new(256, 1),
            CountConfiguration::from_configuration(
                &OneWayEpidemic::new(256, 1),
                &Configuration::clean(&OneWayEpidemic::new(256, 1)),
            ),
            7,
            switchy(),
        );
        assert_eq!(sim.current_kind(), EngineKind::Batched, "sparse start");
        let out = sim.run_until(informed_everywhere, u64::MAX);
        assert!(out.satisfied);
        assert_eq!(sim.counts().count(INFORMED), 256);
        assert!(
            sim.handoffs() >= 2,
            "expected batched → multibatch → batched, got {} handoffs",
            sim.handoffs()
        );
        assert_eq!(
            sim.current_kind(),
            EngineKind::Batched,
            "the near-complete epidemic is silent again"
        );
        assert_eq!(sim.interactions(), out.interactions);
    }

    /// Satellite regression: an adaptive run that hands off
    /// batched → multibatch → batched must construct the multi-batch
    /// survival table exactly once — later multibatch entries hit the
    /// thread-local cache instead of rebuilding the `O(√n)` table.
    #[test]
    fn adaptive_handoffs_reuse_the_survival_table() {
        // The gauge lives in the telemetry layer (always on, telemetry
        // handle or not); `crate::multibatch::survival_table_builds` is the
        // same counter under its historical name.
        use crate::telemetry::survival_table_builds;
        // A population no other test on this thread uses (libtest runs each
        // test on its own thread, so the counter starts fresh anyway).
        let n = 633;
        let before = survival_table_builds();
        let mut sim = SimBuilder::new(OneWayEpidemic::new(n, 1))
            .seed(7)
            .adaptive_config(switchy())
            .build_adaptive();
        let out = sim.run_until(|c| c.count(INFORMED) == c.population(), u64::MAX);
        assert!(out.satisfied);
        assert!(
            sim.handoffs() >= 2,
            "run must actually hand off (got {})",
            sim.handoffs()
        );
        assert_eq!(
            survival_table_builds() - before,
            1,
            "multibatch handoffs rebuilt the survival table"
        );
        // Force one more batched → multibatch handoff: a pure cache hit.
        assert_eq!(sim.current_kind(), EngineKind::Batched);
        let after_run = survival_table_builds();
        sim.swap();
        assert_eq!(sim.current_kind(), EngineKind::MultiBatch);
        assert_eq!(
            survival_table_builds(),
            after_run,
            "re-entering multibatch rebuilt the survival table"
        );
    }

    #[test]
    fn adaptive_try_with_config_surfaces_typed_errors() {
        let protocol = OneWayEpidemic::new(8, 1);
        let counts = CountConfiguration::from_counts(vec![3, 1]);
        let err =
            AdaptiveSimulation::try_with_config(protocol, counts, 0, AdaptiveConfig::default())
                .unwrap_err();
        assert!(err.to_string().contains("must match"), "{err}");

        let protocol = OneWayEpidemic::new(8, 1);
        let counts = CountConfiguration::from_counts(vec![7, 1]);
        let bad_band = AdaptiveConfig {
            low_activity: 0.5,
            high_activity: 0.1,
            check_interval: 0,
        };
        let err = AdaptiveSimulation::try_with_config(protocol, counts, 0, bad_band).unwrap_err();
        assert!(
            err.to_string().contains("low_activity < high_activity"),
            "{err}"
        );
    }

    #[test]
    fn adaptive_initial_engine_follows_initial_activity() {
        // Half informed: the two-way epidemic's mixed pairs put the active
        // fraction near 1/2, over any default-ish high threshold.
        let sim = AdaptiveSimulation::clean(TwoWayEpidemic::new(128, 64), 3);
        assert_eq!(sim.current_kind(), EngineKind::MultiBatch);
        assert!(sim.active_fraction() > 0.4);
        // One source: activity ≈ 2/n, silence dominates.
        let sim = AdaptiveSimulation::clean(TwoWayEpidemic::new(128, 1), 3);
        assert_eq!(sim.current_kind(), EngineKind::Batched);
    }

    #[test]
    fn adaptive_budget_accounting_is_exact_across_handoffs() {
        let mut sim = SimBuilder::new(OneWayEpidemic::new(256, 1))
            .seed(21)
            .adaptive_config(switchy())
            .build_adaptive();
        let mut total = 0u64;
        // Odd chunk sizes deliberately misaligned with the check interval.
        for chunk in [1u64, 37, 250, 999, 1, 4_321] {
            sim.run(chunk);
            total += chunk;
            assert_eq!(sim.interactions(), total, "absolute index drifted");
        }
        assert_eq!(sim.counts().counts().iter().sum::<u64>(), 256);
    }

    #[test]
    fn adaptive_fixed_seed_is_deterministic() {
        let run = |seed: u64| {
            let mut sim = SimBuilder::new(OneWayEpidemic::new(256, 1))
                .seed(seed)
                .adaptive_config(switchy())
                .build_adaptive();
            let out = sim.run_until(informed_everywhere, u64::MAX);
            (out.interactions, sim.handoffs(), sim.counts().clone())
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11).0, run(12).0, "different seeds must diverge");
    }

    #[test]
    fn adaptive_stabilization_indices_stay_absolute_across_handoffs() {
        let warm_up = 2_000u64;
        let mut sim = SimBuilder::new(OneWayEpidemic::new(256, 1))
            .seed(9)
            .adaptive_config(switchy())
            .build_adaptive();
        sim.run(warm_up);
        assert!(sim.handoffs() >= 1, "warm-up must cross the high threshold");
        let opts = StabilizationOptions::new(256, u64::MAX / 2).confirm_window(5_000);
        let res = sim.measure_stabilization(informed_everywhere, opts);
        assert!(res.stabilized());
        let t = res.stabilized_at.unwrap();
        // The epidemic needs ≥ n - 1 informing interactions and the sparse
        // warm-up cannot have finished it, so the absolute index lies past
        // the warm-up and within this call's executed range.
        assert!(t > warm_up, "stabilized_at {t} must include the offset");
        assert!(t <= warm_up + res.interactions);
        assert_eq!(sim.interactions(), warm_up + res.interactions);
    }

    #[test]
    fn adaptive_stall_short_circuits_the_confirm_window_in_batched_mode() {
        // All informed from the start: predicate holds, nothing can change.
        // The adaptive engine must detect the stall through its batched
        // inner engine instead of grinding epochs.
        let mut sim = AdaptiveSimulation::clean(TwoWayEpidemic::new(32, 32), 1);
        assert_eq!(sim.current_kind(), EngineKind::Batched);
        let opts = StabilizationOptions::new(32, u64::MAX / 2).confirm_window(1_000);
        let res = sim.measure_stabilization(informed_everywhere, opts);
        assert!(res.stabilized());
        assert_eq!(res.stabilized_at, Some(0));
        assert!(res.interactions <= 1_000);
    }

    #[test]
    fn adaptive_run_until_budget_exhaustion_reports_unsatisfied() {
        let mut sim = AdaptiveSimulation::clean(OneWayEpidemic::new(64, 1), 5);
        let out = sim.run_until(informed_everywhere, 10);
        assert!(!out.satisfied);
        assert_eq!(out.interactions, 10);
    }

    #[test]
    fn measured_activity_agrees_with_the_batched_engines_exact_answer() {
        let protocol = TwoWayEpidemic::new(100, 30);
        let counts =
            CountConfiguration::from_configuration(&protocol, &Configuration::clean(&protocol));
        let measured = measured_active_fraction(&protocol, &counts);
        let sim = BatchSimulation::new(protocol, counts, 0);
        assert!((measured - sim.active_fraction()).abs() < 1e-12);
        // 30 informed × 70 uninformed mixed ordered pairs, both orders.
        assert!((measured - (2.0 * 30.0 * 70.0) / (100.0 * 99.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "low_activity < high_activity")]
    fn inverted_hysteresis_band_is_rejected() {
        let config = AdaptiveConfig {
            low_activity: 0.5,
            high_activity: 0.1,
            check_interval: 0,
        };
        let _ = SimBuilder::new(OneWayEpidemic::new(8, 1))
            .adaptive_config(config)
            .build_adaptive();
    }

    #[test]
    fn builder_counts_init_feeds_every_kind() {
        for kind in [
            EngineKind::PerStep,
            EngineKind::Batched,
            EngineKind::MultiBatch,
            EngineKind::Auto,
        ] {
            let counts = CountConfiguration::from_counts(vec![30, 2]);
            let mut sim = SimBuilder::new(TwoWayEpidemic::new(32, 1))
                .counts(counts)
                .kind(kind)
                .seed(3)
                .build();
            assert_eq!(sim.counts().count(INFORMED), 2, "{kind:?}");
            let out = sim.run_until(&mut informed_everywhere, u64::MAX);
            assert!(out.satisfied, "{kind:?}");
        }
    }
}
