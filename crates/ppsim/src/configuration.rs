//! Population configurations.
//!
//! A configuration `C ∈ Q^n` assigns one protocol state to each of the `n`
//! agents. [`Configuration`] is a thin, well-behaved wrapper around `Vec<S>`
//! with the predicate helpers the experiment harness and the correctness
//! checks need.

use crate::protocol::{AgentId, CleanInit, Protocol};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A configuration of a population: the vector of all agents' states.
#[derive(Clone, PartialEq, Eq)]
pub struct Configuration<S> {
    states: Vec<S>,
}

impl<S> Configuration<S> {
    /// Creates a configuration from an explicit state vector.
    ///
    /// # Panics
    ///
    /// Panics if `states` is empty: the population model requires `n ≥ 1`
    /// (and every interesting protocol here requires `n ≥ 2`).
    pub fn from_states(states: Vec<S>) -> Self {
        assert!(
            !states.is_empty(),
            "a population must have at least one agent"
        );
        Configuration { states }
    }

    /// The population size `n`.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the population is empty. Always `false` for configurations
    /// built through the public constructors; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Immutable access to an agent's state.
    pub fn state(&self, agent: AgentId) -> &S {
        &self.states[agent.index()]
    }

    /// Mutable access to an agent's state.
    pub fn state_mut(&mut self, agent: AgentId) -> &mut S {
        &mut self.states[agent.index()]
    }

    /// Iterates over all agents' states.
    pub fn iter(&self) -> std::slice::Iter<'_, S> {
        self.states.iter()
    }

    /// Iterates mutably over all agents' states.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, S> {
        self.states.iter_mut()
    }

    /// Returns the states as a slice.
    pub fn as_slice(&self) -> &[S] {
        &self.states
    }

    /// Consumes the configuration and returns the underlying state vector.
    pub fn into_states(self) -> Vec<S> {
        self.states
    }

    /// Counts the agents whose state satisfies the predicate.
    pub fn count_where<F: FnMut(&S) -> bool>(&self, mut pred: F) -> usize {
        self.states.iter().filter(|s| pred(s)).count()
    }

    /// Whether every agent's state satisfies the predicate.
    pub fn all<F: FnMut(&S) -> bool>(&self, pred: F) -> bool {
        self.states.iter().all(pred)
    }

    /// Whether some agent's state satisfies the predicate.
    pub fn any<F: FnMut(&S) -> bool>(&self, pred: F) -> bool {
        self.states.iter().any(pred)
    }

    /// Applies the ordered-pair transition `(u, v)` by handing mutable access
    /// to both slots to the closure.
    ///
    /// # Panics
    ///
    /// Panics if `u == v` (an agent never interacts with itself) or if either
    /// index is out of bounds.
    pub fn with_pair_mut<F: FnOnce(&mut S, &mut S)>(&mut self, u: AgentId, v: AgentId, f: F) {
        let (ui, vi) = (u.index(), v.index());
        assert_ne!(ui, vi, "an agent cannot interact with itself");
        let (a, b) = if ui < vi {
            let (left, right) = self.states.split_at_mut(vi);
            (&mut left[ui], &mut right[0])
        } else {
            let (left, right) = self.states.split_at_mut(ui);
            (&mut right[0], &mut left[vi])
        };
        f(a, b);
    }
}

impl<S: Clone> Configuration<S> {
    /// Creates a configuration with every agent in the same state.
    pub fn uniform(n: usize, state: S) -> Self {
        assert!(n > 0, "a population must have at least one agent");
        Configuration {
            states: vec![state; n],
        }
    }
}

impl<S> Configuration<S> {
    /// Creates the protocol's clean initial configuration (every agent in its
    /// [`CleanInit::clean_state`]).
    pub fn clean<P>(protocol: &P) -> Configuration<P::State>
    where
        P: CleanInit<State = S>,
    {
        let n = protocol.population_size();
        assert!(n > 0, "a population must have at least one agent");
        Configuration {
            states: (0..n)
                .map(|i| protocol.clean_state(AgentId::new(i)))
                .collect(),
        }
    }

    /// Creates a configuration by evaluating `f` on every agent slot.
    pub fn from_fn<P, F>(protocol: &P, mut f: F) -> Configuration<P::State>
    where
        P: Protocol<State = S>,
        F: FnMut(AgentId) -> P::State,
    {
        let n = protocol.population_size();
        assert!(n > 0, "a population must have at least one agent");
        Configuration {
            states: (0..n).map(|i| f(AgentId::new(i))).collect(),
        }
    }
}

impl<S: fmt::Debug> fmt::Debug for Configuration<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Configuration")
            .field("n", &self.states.len())
            .field("states", &self.states)
            .finish()
    }
}

impl<S> Index<usize> for Configuration<S> {
    type Output = S;
    fn index(&self, index: usize) -> &S {
        &self.states[index]
    }
}

impl<S> IndexMut<usize> for Configuration<S> {
    fn index_mut(&mut self, index: usize) -> &mut S {
        &mut self.states[index]
    }
}

impl<S> FromIterator<S> for Configuration<S> {
    fn from_iter<T: IntoIterator<Item = S>>(iter: T) -> Self {
        Configuration::from_states(iter.into_iter().collect())
    }
}

impl<'a, S> IntoIterator for &'a Configuration<S> {
    type Item = &'a S;
    type IntoIter = std::slice::Iter<'a, S>;
    fn into_iter(self) -> Self::IntoIter {
        self.states.iter()
    }
}

impl<S> IntoIterator for Configuration<S> {
    type Item = S;
    type IntoIter = std::vec::IntoIter<S>;
    fn into_iter(self) -> Self::IntoIter {
        self.states.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::InteractionCtx;

    struct Noop(usize);
    impl Protocol for Noop {
        type State = u32;
        fn population_size(&self) -> usize {
            self.0
        }
        fn interact(&self, _u: &mut u32, _v: &mut u32, _ctx: &mut InteractionCtx<'_>) {}
    }
    impl CleanInit for Noop {
        fn clean_state(&self, agent: AgentId) -> u32 {
            agent.index() as u32
        }
    }

    #[test]
    fn clean_uses_clean_state() {
        let c = Configuration::clean(&Noop(5));
        assert_eq!(c.as_slice(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn from_fn_evaluates_each_slot() {
        let c = Configuration::from_fn(&Noop(3), |a| (a.index() * 10) as u32);
        assert_eq!(c.as_slice(), &[0, 10, 20]);
    }

    #[test]
    fn uniform_fills_population() {
        let c = Configuration::uniform(4, 7u32);
        assert_eq!(c.len(), 4);
        assert!(c.all(|s| *s == 7));
    }

    #[test]
    fn count_any_all() {
        let c = Configuration::from_states(vec![1, 2, 3, 4]);
        assert_eq!(c.count_where(|s| s % 2 == 0), 2);
        assert!(c.any(|s| *s == 3));
        assert!(!c.all(|s| *s > 1));
    }

    #[test]
    fn with_pair_mut_gives_disjoint_access_both_orders() {
        let mut c = Configuration::from_states(vec![1, 2, 3]);
        c.with_pair_mut(AgentId::new(0), AgentId::new(2), |a, b| {
            std::mem::swap(a, b);
        });
        assert_eq!(c.as_slice(), &[3, 2, 1]);
        c.with_pair_mut(AgentId::new(2), AgentId::new(0), |a, b| {
            *a += 10;
            *b += 100;
        });
        assert_eq!(c.as_slice(), &[103, 2, 11]);
    }

    #[test]
    #[should_panic(expected = "cannot interact with itself")]
    fn with_pair_mut_rejects_self_interaction() {
        let mut c = Configuration::from_states(vec![1, 2, 3]);
        c.with_pair_mut(AgentId::new(1), AgentId::new(1), |_a, _b| {});
    }

    #[test]
    #[should_panic(expected = "at least one agent")]
    fn empty_population_rejected() {
        let _ = Configuration::<u32>::from_states(vec![]);
    }

    #[test]
    fn indexing_and_iteration() {
        let mut c: Configuration<u32> = (0..4u32).collect();
        assert_eq!(c[2], 2);
        c[2] = 9;
        assert_eq!(*c.state(AgentId::new(2)), 9);
        *c.state_mut(AgentId::new(0)) = 5;
        let collected: Vec<u32> = (&c).into_iter().copied().collect();
        assert_eq!(collected, vec![5, 1, 9, 3]);
        let owned: Vec<u32> = c.into_iter().collect();
        assert_eq!(owned, vec![5, 1, 9, 3]);
    }
}
