//! Summary statistics for experiment results.
//!
//! Small, dependency-free statistics helpers: five-number-style summaries,
//! histograms, and a log–log least-squares slope used to check asymptotic
//! shapes (e.g. "stabilization time scales like `1/r`").

use serde::Serialize;

/// A summary of a sample of real values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator; 0 for a single value).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// 10th percentile.
    pub p10: f64,
    /// Median.
    pub median: f64,
    /// 90th percentile.
    pub p90: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample.
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty or contains non-finite values.
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "cannot summarize an empty sample");
        assert!(
            values.iter().all(|v| v.is_finite()),
            "cannot summarize non-finite values"
        );
        let mut sorted: Vec<f64> = values.to_vec();
        // lint:allow(panic): all values asserted finite above, so partial_cmp is total
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values are comparable"));
        let count = sorted.len();
        let mean = sorted.iter().sum::<f64>() / count as f64;
        let var = if count > 1 {
            sorted.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (count - 1) as f64
        } else {
            0.0
        };
        Summary {
            count,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            p10: percentile(&sorted, 0.10),
            median: percentile(&sorted, 0.50),
            p90: percentile(&sorted, 0.90),
            max: sorted[count - 1],
        }
    }

    /// Half-width of a normal-approximation 95% confidence interval for the
    /// mean.
    pub fn ci95_half_width(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        1.96 * self.std_dev / (self.count as f64).sqrt()
    }
}

/// Linear interpolation percentile of an already-sorted sample, `q ∈ [0, 1]`.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = pos - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Least-squares slope of `ln(y)` against `ln(x)`.
///
/// Used to verify asymptotic shapes: if `y ≈ c · x^a`, the returned slope
/// approximates `a`.
///
/// # Panics
///
/// Panics if fewer than two points are given or any coordinate is not
/// strictly positive.
pub fn log_log_slope(points: &[(f64, f64)]) -> f64 {
    assert!(points.len() >= 2, "need at least two points for a slope");
    assert!(
        points.iter().all(|&(x, y)| x > 0.0 && y > 0.0),
        "log-log slope requires strictly positive coordinates"
    );
    let logs: Vec<(f64, f64)> = points.iter().map(|&(x, y)| (x.ln(), y.ln())).collect();
    let n = logs.len() as f64;
    let sx: f64 = logs.iter().map(|p| p.0).sum();
    let sy: f64 = logs.iter().map(|p| p.1).sum();
    let sxx: f64 = logs.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = logs.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

/// Two-sample Kolmogorov–Smirnov statistic: the maximum distance between the
/// empirical CDFs of the two samples.
///
/// Used by the cross-engine equivalence checks (batched vs per-step
/// stabilization-time distributions): for samples of sizes `m` and `n` from
/// the same distribution, the statistic exceeds
/// `1.63 · sqrt((m + n) / (m n))` with probability below 1%.
///
/// # Panics
///
/// Panics if either sample is empty or contains non-finite values.
pub fn ks_distance(a: &[f64], b: &[f64]) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "need two non-empty samples");
    assert!(
        a.iter().chain(b).all(|v| v.is_finite()),
        "samples must be finite"
    );
    let mut a = a.to_vec();
    let mut b = b.to_vec();
    a.sort_by(|x, y| x.total_cmp(y));
    b.sort_by(|x, y| x.total_cmp(y));
    let (mut i, mut j, mut d) = (0usize, 0usize, 0f64);
    while i < a.len() && j < b.len() {
        // Step past one distinct value on both sides at once, so tied
        // observations (common for integer-valued hitting times) do not
        // produce spurious transient gaps.
        let x = if a[i] <= b[j] { a[i] } else { b[j] };
        while i < a.len() && a[i] == x {
            i += 1;
        }
        while j < b.len() && b[j] == x {
            j += 1;
        }
        let fa = i as f64 / a.len() as f64;
        let fb = j as f64 / b.len() as f64;
        d = d.max((fa - fb).abs());
    }
    d
}

/// A fixed-width histogram over `[min, max)`.
#[derive(Debug, Clone, Serialize)]
pub struct Histogram {
    min: f64,
    max: f64,
    bins: Vec<u64>,
    below: u64,
    above: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins covering `[min, max)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins` is zero or `min >= max`.
    pub fn new(min: f64, max: f64, bins: usize) -> Self {
        assert!(bins > 0, "a histogram needs at least one bin");
        assert!(min < max, "histogram range must be non-empty");
        Histogram {
            min,
            max,
            bins: vec![0; bins],
            below: 0,
            above: 0,
        }
    }

    /// Records an observation.
    pub fn record(&mut self, value: f64) {
        if value < self.min {
            self.below += 1;
        } else if value >= self.max {
            self.above += 1;
        } else {
            let width = (self.max - self.min) / self.bins.len() as f64;
            let idx = ((value - self.min) / width) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// The per-bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Observations below / above the range.
    pub fn outliers(&self) -> (u64, u64) {
        (self.below, self.above)
    }

    /// Total number of recorded observations, including outliers.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.below + self.above
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.count, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.median - 3.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.std_dev - (2.5f64).sqrt()).abs() < 1e-12);
        assert!(s.ci95_half_width() > 0.0);
    }

    #[test]
    fn summary_single_value() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.ci95_half_width(), 0.0);
        assert_eq!(s.median, 7.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn summary_empty_panics() {
        let _ = Summary::of(&[]);
    }

    #[test]
    fn log_log_slope_recovers_exponent() {
        let points: Vec<(f64, f64)> = (1..=6)
            .map(|i| {
                let x = (1 << i) as f64;
                (x, 3.0 * x.powf(1.5))
            })
            .collect();
        assert!((log_log_slope(&points) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn log_log_slope_negative_exponent() {
        let points: Vec<(f64, f64)> = (1..=6)
            .map(|i| {
                let x = (1 << i) as f64;
                (x, 10.0 / x)
            })
            .collect();
        assert!((log_log_slope(&points) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn ks_distance_is_zero_for_identical_and_one_for_disjoint_samples() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(ks_distance(&a, &a), 0.0);
        let b = [10.0, 11.0, 12.0];
        assert_eq!(ks_distance(&a, &b), 1.0);
        // Interleaved samples of the same range stay small.
        let c = [1.5, 2.5, 3.5];
        assert!(ks_distance(&a, &c) <= 0.5);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn ks_distance_rejects_empty_samples() {
        let _ = ks_distance(&[], &[1.0]);
    }

    #[test]
    fn histogram_bins_and_outliers() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for v in [-1.0, 0.0, 1.9, 2.0, 9.9, 10.0, 50.0] {
            h.record(v);
        }
        assert_eq!(h.bins(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.outliers(), (1, 2));
        assert_eq!(h.total(), 7);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_zero_bins_rejected() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }
}
