//! Dynamic state indexing: running the batched engine on protocols whose
//! state space is too large (or too awkward) to enumerate up front.
//!
//! [`crate::BatchSimulation`] needs a bijection between the protocol's state
//! space and `0..|Q|` ([`EnumerableProtocol`]). For the paper's epidemics and
//! the baseline protocols that bijection is a closed-form formula, but for
//! `ElectLeader_r` the reachable state space is huge, `n`-dependent, and only
//! *sparsely* occupied: at any moment a population of `n` agents occupies at
//! most `n` states, discovered one transition at a time. Enumerating all of
//! `Q` — let alone all `|Q|²` ordered pairs — is neither possible nor needed.
//!
//! [`DiscoveredProtocol`] solves this the way the `ppsim` simulator of Doty
//! et al. scales protocols with unbounded state spaces: states are assigned
//! indices **lazily, as they are first reached**. The adapter wraps any
//! protocol whose states are `Hash + Eq + Clone` and implements
//! [`EnumerableProtocol`] over the growing index space; the batched engine
//! tracks the growth (`num_states` is monotone over a run) and never touches
//! pairs of states that are not currently occupied.
//!
//! Two protocol-level questions remain — "is this pair silent?" and "what is
//! the outcome distribution?" — and the wrapped protocol answers them through
//! [`SupportEnumerable`]:
//!
//! * [`SupportEnumerable::silent_pair`] is the state-level silence test
//!   (exactly the [`EnumerableProtocol::is_silent`] contract);
//! * [`SupportEnumerable::pair_support`] enumerates the transition's outcome
//!   distribution where practical, and returns `None` where it is not
//!   (e.g. a transition drawing an identifier from `[n³]`), in which case the
//!   engine samples the outcome blind through [`Protocol::interact`].
//!
//! For transitions that consume no randomness the support is a single
//! outcome, and [`deterministic_support`] computes it generically by probing
//! [`Protocol::interact`] with a draw-counting RNG.

use crate::enumerable::EnumerableProtocol;
use crate::protocol::{InteractionCtx, Protocol};
use crate::telemetry::{Counter, Telemetry};
use rand::RngCore;
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;
use std::rc::Rc;

/// An enumerated outcome distribution on state pairs: every entry maps an
/// ordered `(initiator, responder)` outcome to its probability.
pub type StateSupport<S> = Vec<((S, S), f64)>;

/// State-level transition inspection, the protocol-side requirement of
/// [`DiscoveredProtocol`].
///
/// Both methods must be *functions of the two states only* — they may not
/// depend on the interaction index or on external state. `silent_pair` may
/// only return `true` when the transition maps the ordered pair to itself
/// with certainty (the [`EnumerableProtocol::is_silent`] contract);
/// `pair_support`, when it returns `Some`, must list every outcome the
/// transition can produce with strictly positive probabilities summing to 1.
pub trait SupportEnumerable: Protocol {
    /// Whether the ordered state pair is a certain no-op.
    ///
    /// The conservative default claims nothing is silent — always safe, but
    /// it removes the batching advantage; override it with the protocol's
    /// actual null transitions.
    fn silent_pair(&self, initiator: &Self::State, responder: &Self::State) -> bool {
        let _ = (initiator, responder);
        false
    }

    /// The exhaustive outcome distribution of the transition on the ordered
    /// pair, or `None` when enumeration is impractical (the engine then
    /// samples the outcome blind via [`Protocol::interact`]).
    ///
    /// The default enumerates what it can without protocol knowledge: silent
    /// pairs map to themselves, and deterministic transitions (detected by
    /// probing [`Protocol::interact`] with a draw-counting RNG, see
    /// [`deterministic_support`]) have a single outcome.
    fn pair_support(
        &self,
        initiator: &Self::State,
        responder: &Self::State,
    ) -> Option<StateSupport<Self::State>> {
        if self.silent_pair(initiator, responder) {
            return Some(vec![((initiator.clone(), responder.clone()), 1.0)]);
        }
        deterministic_support(self, initiator, responder)
    }
}

/// An RNG wrapper that counts how many draws the wrapped generator served.
///
/// Used to *probe* a transition: if `interact` completes without drawing, its
/// outcome is deterministic and can be cached / enumerated; if it drew, the
/// probe outcome is discarded and the transition is treated as randomized.
struct CountingRng {
    /// SplitMix64 state — cheap, deterministic dummy randomness. The values
    /// only matter on probes that end up discarded.
    state: u64,
    draws: u64,
}

impl CountingRng {
    fn new() -> Self {
        CountingRng {
            state: 0x9E37_79B9_7F4A_7C15,
            draws: 0,
        }
    }
}

impl RngCore for CountingRng {
    fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }
    fn next_u64(&mut self) -> u64 {
        self.draws += 1;
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// Probes `interact` on clones of the pair: `Some` single-outcome support if
/// the transition consumed no randomness, `None` if it drew (the probe
/// outcome is discarded — it was produced from dummy randomness).
///
/// The probe executes one transition, so it costs as much as the transition
/// itself; callers on a hot path should reach for it only when they are about
/// to execute the pair anyway (as the batched engine does).
pub fn deterministic_support<P: Protocol + ?Sized>(
    protocol: &P,
    initiator: &P::State,
    responder: &P::State,
) -> Option<StateSupport<P::State>> {
    let mut u = initiator.clone();
    let mut v = responder.clone();
    let mut probe = CountingRng::new();
    let draws = {
        let mut ctx = InteractionCtx::new(&mut probe, 0);
        protocol.interact(&mut u, &mut v, &mut ctx);
        probe.draws
    };
    if draws == 0 {
        Some(vec![((u, v), 1.0)])
    } else {
        None
    }
}

/// The growing state ↔ index bijection.
struct Interner<S> {
    states: Vec<S>,
    index_of: HashMap<S, usize>,
}

impl<S: Hash + Eq + Clone> Interner<S> {
    fn new() -> Self {
        Interner {
            states: Vec::new(),
            index_of: HashMap::new(),
        }
    }

    fn intern(&mut self, state: &S) -> usize {
        if let Some(&index) = self.index_of.get(state) {
            return index;
        }
        let index = self.states.len();
        self.states.push(state.clone());
        self.index_of.insert(state.clone(), index);
        index
    }
}

/// Adapter implementing [`EnumerableProtocol`] for any [`SupportEnumerable`]
/// protocol with hashable states, assigning indices lazily as states are
/// first reached.
///
/// Indices are assigned in discovery order and never change; `num_states()`
/// is therefore *monotone over a run* — it reports how many states have been
/// discovered so far, not the size of the full reachable space. The batched
/// engine re-reads it after every transition and grows its count vector
/// accordingly.
///
/// Cloning the adapter is cheap and shares the underlying protocol and
/// index map (via `Rc`), so a stabilization predicate can hold its own handle
/// for decoding while the engine owns the adapter. The shared interior makes
/// the adapter single-threaded (`!Send`); run one adapter per thread.
///
/// # Examples
///
/// ```
/// use ppsim::epidemic::OneWayEpidemic;
/// use ppsim::indexer::DiscoveredProtocol;
/// use ppsim::{BatchSimulation, CountConfiguration};
///
/// // Epidemics implement `SupportEnumerable` (silence on the state level),
/// // so they can run under the adapter — no up-front enumeration involved.
/// // Indices follow discovery order, so predicates peek at the states
/// // through a shared handle instead of hard-coding indices.
/// let discovered = DiscoveredProtocol::new(OneWayEpidemic::new(256, 1));
/// let handle = discovered.clone();
/// let mut sim = BatchSimulation::clean(discovered, 7);
/// let everyone_informed = |c: &CountConfiguration| {
///     (0..c.num_states()).all(|i| c.count(i) == 0 || handle.peek(i, |s| *s))
/// };
/// let out = sim.run_until(everyone_informed, u64::MAX);
/// assert!(out.satisfied);
/// ```
pub struct DiscoveredProtocol<P: SupportEnumerable>
where
    P::State: Hash + Eq,
{
    inner: Rc<P>,
    interner: Rc<RefCell<Interner<P::State>>>,
    /// Memoized [`EnumerableProtocol::transition_support`] answers per fired
    /// ordered index pair. Sound because supports are functions of the two
    /// states only and indices never change; shared across clones so a
    /// predicate handle warms the same cache as the engine.
    #[allow(clippy::type_complexity)]
    support_cache: Rc<RefCell<HashMap<(usize, usize), Vec<((usize, usize), f64)>>>>,
    /// Observability handle in a shared slot, so attaching telemetry through
    /// any clone (the engine's copy or a predicate handle) makes intern and
    /// memo counters land in one report. Disabled by default: every probe is
    /// then an early-out and discovery behaves identically.
    telemetry: Rc<RefCell<Telemetry>>,
}

impl<P: SupportEnumerable> Clone for DiscoveredProtocol<P>
where
    P::State: Hash + Eq,
{
    fn clone(&self) -> Self {
        DiscoveredProtocol {
            inner: Rc::clone(&self.inner),
            interner: Rc::clone(&self.interner),
            support_cache: Rc::clone(&self.support_cache),
            telemetry: Rc::clone(&self.telemetry),
        }
    }
}

impl<P: SupportEnumerable> fmt::Debug for DiscoveredProtocol<P>
where
    P::State: Hash + Eq,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DiscoveredProtocol")
            .field("discovered_states", &self.num_states())
            .finish()
    }
}

impl<P: SupportEnumerable> DiscoveredProtocol<P>
where
    P::State: Hash + Eq,
{
    /// Wraps a protocol; no states are discovered yet.
    pub fn new(inner: P) -> Self {
        DiscoveredProtocol {
            inner: Rc::new(inner),
            interner: Rc::new(RefCell::new(Interner::new())),
            support_cache: Rc::new(RefCell::new(HashMap::new())),
            telemetry: Rc::new(RefCell::new(Telemetry::disabled())),
        }
    }

    /// Attaches a [`Telemetry`] handle to the shared slot — every clone of
    /// this adapter counts interned states and support-memo hits/misses into
    /// that handle's report from now on.
    pub fn set_telemetry(&self, telemetry: Telemetry) {
        *self.telemetry.borrow_mut() = telemetry;
    }

    /// Counts `minted` freshly interned states, if anyone is listening.
    fn note_interned(&self, minted: u64) {
        if minted > 0 {
            self.telemetry
                .borrow()
                .count(Counter::IndexerInternedStates, minted);
        }
    }

    /// Number of ordered index pairs with a memoized transition support.
    pub fn cached_supports(&self) -> usize {
        self.support_cache.borrow().len()
    }

    /// The wrapped protocol.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Applies `f` to the state at `index` without cloning it.
    ///
    /// This is the cheap way for stabilization predicates to inspect occupied
    /// states ([`EnumerableProtocol::decode`] must clone).
    ///
    /// # Panics
    ///
    /// Panics if `index` has not been discovered.
    pub fn peek<R>(&self, index: usize, f: impl FnOnce(&P::State) -> R) -> R {
        f(&self.interner.borrow().states[index])
    }
}

impl<P: SupportEnumerable + crate::protocol::CleanInit> crate::protocol::CleanInit
    for DiscoveredProtocol<P>
where
    P::State: Hash + Eq,
{
    fn clean_state(&self, agent: crate::protocol::AgentId) -> Self::State {
        self.inner.clean_state(agent)
    }

    fn clean_runs(&self) -> Box<dyn Iterator<Item = (Self::State, u64)> + '_> {
        // Delegating preserves the inner protocol's run collapsing: a
        // uniform clean start interns its state once, not once per agent —
        // the difference between O(1) and 10⁸ hash probes before the first
        // interaction at n = 10⁸.
        self.inner.clean_runs()
    }
}

impl<P: SupportEnumerable> Protocol for DiscoveredProtocol<P>
where
    P::State: Hash + Eq,
{
    type State = P::State;

    fn population_size(&self) -> usize {
        self.inner.population_size()
    }

    fn interact(
        &self,
        initiator: &mut Self::State,
        responder: &mut Self::State,
        ctx: &mut InteractionCtx<'_>,
    ) {
        self.inner.interact(initiator, responder, ctx);
    }
}

impl<P: SupportEnumerable> EnumerableProtocol for DiscoveredProtocol<P>
where
    P::State: Hash + Eq,
{
    /// The number of states discovered *so far* (monotone over a run).
    fn num_states(&self) -> usize {
        self.interner.borrow().states.len()
    }

    /// Interns the state, assigning the next free index on first sight.
    fn encode(&self, state: &Self::State) -> usize {
        let (index, minted) = {
            let mut interner = self.interner.borrow_mut();
            let before = interner.states.len();
            let index = interner.intern(state);
            (index, (interner.states.len() - before) as u64)
        };
        self.note_interned(minted);
        index
    }

    fn decode(&self, index: usize) -> Self::State {
        self.interner.borrow().states[index].clone()
    }

    fn is_silent(&self, initiator: usize, responder: usize) -> bool {
        let interner = self.interner.borrow();
        self.inner
            .silent_pair(&interner.states[initiator], &interner.states[responder])
    }

    fn transition_indices(
        &self,
        initiator: usize,
        responder: usize,
        ctx: &mut InteractionCtx<'_>,
    ) -> (usize, usize) {
        // Clone the endpoint states out before interacting so the interner is
        // free to be re-borrowed for encoding the (possibly new) outcomes.
        let (mut u, mut v) = {
            let interner = self.interner.borrow();
            (
                interner.states[initiator].clone(),
                interner.states[responder].clone(),
            )
        };
        self.inner.interact(&mut u, &mut v, ctx);
        let (pair, minted) = {
            let mut interner = self.interner.borrow_mut();
            let before = interner.states.len();
            let pair = (interner.intern(&u), interner.intern(&v));
            (pair, (interner.states.len() - before) as u64)
        };
        self.note_interned(minted);
        pair
    }

    fn transition_support(&self, initiator: usize, responder: usize) -> Vec<((usize, usize), f64)> {
        // A pair that fired once tends to fire again (the batched engine asks
        // per executed transition, and `ElectLeader_r` runs concentrate their
        // firing on a handful of occupied pairs), so memoize the answer per
        // index pair: `pair_support` probes the transition on clones of the
        // (wide) states, which dwarfs a small-`Vec` clone from the cache.
        if let Some(cached) = self.support_cache.borrow().get(&(initiator, responder)) {
            self.telemetry.borrow().count(Counter::IndexerMemoHits, 1);
            return cached.clone();
        }
        self.telemetry.borrow().count(Counter::IndexerMemoMisses, 1);
        // Hold the immutable borrow only across the (reference-taking)
        // support call — the wrapped protocol cannot touch the interner —
        // then re-borrow mutably to intern the owned outcome states. This
        // avoids deep-cloning the endpoint states on every fired transition.
        let support = {
            let interner = self.interner.borrow();
            self.inner
                .pair_support(&interner.states[initiator], &interner.states[responder])
        };
        let indexed: Vec<((usize, usize), f64)> = match support {
            Some(support) => {
                let (indexed, minted) = {
                    let mut interner = self.interner.borrow_mut();
                    let before = interner.states.len();
                    let indexed: Vec<((usize, usize), f64)> = support
                        .into_iter()
                        .map(|((a, b), p)| ((interner.intern(&a), interner.intern(&b)), p))
                        .collect();
                    (indexed, (interner.states.len() - before) as u64)
                };
                self.note_interned(minted);
                indexed
            }
            None => Vec::new(),
        };
        self.support_cache
            .borrow_mut()
            .insert((initiator, responder), indexed.clone());
        indexed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{AgentId, CleanInit};
    use crate::{BatchSimulation, Configuration, SimRng};

    /// One-way epidemic on `bool` states, with state-level silence.
    struct Spread(usize);

    impl Protocol for Spread {
        type State = bool;
        fn population_size(&self) -> usize {
            self.0
        }
        fn interact(&self, u: &mut bool, v: &mut bool, _ctx: &mut InteractionCtx<'_>) {
            if *u {
                *v = true;
            }
        }
    }

    impl CleanInit for Spread {
        fn clean_state(&self, agent: AgentId) -> bool {
            agent.index() == 0
        }

        fn clean_runs(&self) -> Box<dyn Iterator<Item = (bool, u64)> + '_> {
            // Collapsed runs in the same agent order as `clean_state`, so
            // the flat-vs-per-agent test below exercises the collapsed
            // interning path.
            Box::new([(true, 1), (false, self.0 as u64 - 1)].into_iter())
        }
    }

    impl SupportEnumerable for Spread {
        fn silent_pair(&self, u: &bool, v: &bool) -> bool {
            !*u || *v
        }
    }

    /// A lazy coin: an excited initiator either calms down or excites the
    /// responder, each with probability 1/2 — a genuinely randomized
    /// transition with a small, enumerable support.
    struct LazyCoin(usize);

    impl Protocol for LazyCoin {
        type State = bool;
        fn population_size(&self) -> usize {
            self.0
        }
        fn interact(&self, u: &mut bool, v: &mut bool, ctx: &mut InteractionCtx<'_>) {
            if *u && !*v {
                if ctx.sample_bool() {
                    *v = true;
                } else {
                    *u = false;
                }
            }
        }
    }

    impl SupportEnumerable for LazyCoin {
        fn silent_pair(&self, u: &bool, v: &bool) -> bool {
            !*u || *v
        }
        fn pair_support(&self, u: &bool, v: &bool) -> Option<Vec<((bool, bool), f64)>> {
            if self.silent_pair(u, v) {
                Some(vec![((*u, *v), 1.0)])
            } else {
                Some(vec![((true, true), 0.5), ((false, false), 0.5)])
            }
        }
    }

    #[test]
    fn indices_are_assigned_in_discovery_order() {
        let p = DiscoveredProtocol::new(Spread(4));
        assert_eq!(p.num_states(), 0);
        assert_eq!(p.encode(&true), 0);
        assert_eq!(p.encode(&false), 1);
        assert_eq!(p.encode(&true), 0, "interning is idempotent");
        assert_eq!(p.num_states(), 2);
        assert!(p.decode(0));
        assert!(!p.decode(1));
        p.peek(1, |s| assert!(!*s));
    }

    #[test]
    fn clones_share_the_index_map() {
        let p = DiscoveredProtocol::new(Spread(4));
        let q = p.clone();
        assert_eq!(p.encode(&false), 0);
        assert_eq!(q.num_states(), 1, "discoveries are visible through clones");
        assert_eq!(q.encode(&false), 0);
    }

    #[test]
    fn silence_and_support_delegate_to_state_level_answers() {
        let p = DiscoveredProtocol::new(Spread(4));
        let informed = p.encode(&true);
        let susceptible = p.encode(&false);
        assert!(p.is_silent(susceptible, informed));
        assert!(!p.is_silent(informed, susceptible));
        // The non-silent pair is deterministic, so the default
        // `pair_support` enumerates its single outcome by probing.
        assert_eq!(
            p.transition_support(informed, susceptible),
            vec![((informed, informed), 1.0)]
        );
        assert_eq!(
            p.transition_support(susceptible, informed),
            vec![((susceptible, informed), 1.0)]
        );
    }

    #[test]
    fn randomized_supports_are_interned_with_their_weights() {
        let p = DiscoveredProtocol::new(LazyCoin(4));
        let excited = p.encode(&true);
        let calm = p.encode(&false);
        let support = p.transition_support(excited, calm);
        assert_eq!(
            support,
            vec![((excited, excited), 0.5), ((calm, calm), 0.5)]
        );
    }

    #[test]
    fn deterministic_support_rejects_randomized_transitions() {
        let coin = LazyCoin(4);
        assert!(deterministic_support(&coin, &true, &false).is_none());
        assert_eq!(
            deterministic_support(&coin, &false, &true),
            Some(vec![((false, true), 1.0)])
        );
    }

    #[test]
    fn transition_supports_are_cached_per_index_pair() {
        let p = DiscoveredProtocol::new(LazyCoin(4));
        let excited = p.encode(&true);
        let calm = p.encode(&false);
        assert_eq!(p.cached_supports(), 0);
        let first = p.transition_support(excited, calm);
        assert_eq!(p.cached_supports(), 1);
        // The cached answer is returned verbatim, and clones share the cache.
        assert_eq!(p.clone().transition_support(excited, calm), first);
        assert_eq!(p.cached_supports(), 1);
        // Unknown supports (empty answers) are memoized too — that is what
        // saves the repeated deterministic-support probe per fired pair.
        struct Sampler(usize);
        impl Protocol for Sampler {
            type State = u8;
            fn population_size(&self) -> usize {
                self.0
            }
            fn interact(&self, u: &mut u8, _v: &mut u8, ctx: &mut InteractionCtx<'_>) {
                *u = (ctx.sample_below(3)) as u8;
            }
        }
        impl SupportEnumerable for Sampler {}
        let q = DiscoveredProtocol::new(Sampler(4));
        let a = q.encode(&0);
        let b = q.encode(&1);
        assert!(q.transition_support(a, b).is_empty());
        assert_eq!(q.cached_supports(), 1);
        assert!(q.transition_support(a, b).is_empty());
        assert_eq!(q.cached_supports(), 1);
    }

    #[test]
    fn transition_indices_discovers_new_states() {
        let p = DiscoveredProtocol::new(Spread(4));
        let informed = p.encode(&true);
        let susceptible = p.encode(&false);
        let mut rng = SimRng::seed_from_u64(0);
        let mut ctx = InteractionCtx::new(&mut rng, 0);
        assert_eq!(
            p.transition_indices(informed, susceptible, &mut ctx),
            (informed, informed)
        );
        assert_eq!(p.num_states(), 2);
    }

    #[test]
    fn flat_clean_path_matches_the_per_agent_path() {
        // `CountConfiguration::from_clean_init` must intern states in the
        // same agent-index order as materializing `Configuration::clean` and
        // encoding it agent by agent — otherwise the two construction paths
        // would hand the engines different index assignments for the same
        // protocol and break snapshot reproducibility.
        let flat = DiscoveredProtocol::new(Spread(16));
        let flat_counts = crate::CountConfiguration::from_clean_init(&flat);

        let per_agent = DiscoveredProtocol::new(Spread(16));
        let config = Configuration::clean(&per_agent);
        let per_agent_counts = crate::CountConfiguration::from_configuration(&per_agent, &config);

        assert_eq!(flat.num_states(), per_agent.num_states());
        assert_eq!(flat_counts.num_states(), per_agent_counts.num_states());
        for i in 0..flat.num_states() {
            assert_eq!(
                flat.decode(i),
                per_agent.decode(i),
                "interning order at {i}"
            );
            assert_eq!(
                flat_counts.count(i),
                per_agent_counts.count(i),
                "count at {i}"
            );
        }
        // Agent 0 is the informed source, so `true` is discovered first.
        assert!(flat.decode(0));
        assert_eq!(flat_counts.count(0), 1);
        assert_eq!(flat_counts.count(1), 15);
    }

    #[test]
    fn discovered_epidemic_completes_under_the_batched_engine() {
        let p = DiscoveredProtocol::new(Spread(128));
        let mut sim = BatchSimulation::clean(p, 11);
        let out = sim.run_until(|c| c.count(0) == c.population(), u64::MAX);
        assert!(out.satisfied);
        // Exactly n - 1 informing interactions, as for the enumerated engine.
        assert_eq!(sim.active_interactions(), 127);
    }

    #[test]
    fn discovered_randomized_protocol_drains_excitement() {
        // From all-excited, every non-silent interaction either spreads or
        // calms; eventually everyone is excited or calmed in a way that can
        // stall. Just check the engine runs it without blind sampling issues.
        let p = DiscoveredProtocol::new(LazyCoin(64));
        let config = Configuration::uniform(64, true);
        let mut sim = BatchSimulation::from_configuration(p, &config, 3);
        // All-true is fully silent: every pair maps to itself.
        let active = sim.run(10_000);
        assert_eq!(active, 0);
    }

    #[test]
    fn counting_rng_counts_draws() {
        let mut rng = CountingRng::new();
        let _ = rng.next_u64();
        let _ = rng.next_u32();
        let mut buf = [0u8; 12];
        rng.fill_bytes(&mut buf);
        assert_eq!(rng.draws, 4, "12 bytes need two u64 draws");
    }
}
