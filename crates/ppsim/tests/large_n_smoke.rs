//! Large-`n` smoke tests — `#[ignore]`d by default because they only make
//! sense in release mode (CI runs them with `--release -- --ignored`).
//!
//! These pin the headline claim of the overflow-safe count paths: a one-way
//! epidemic completes a *single* run at `n = 10⁸` under [`EngineKind::Auto`]
//! within a 2 GiB peak-RSS budget, and the batched and multi-batch engines
//! agree on the epidemic's mean completion time at `n = 10⁷`.

use ppsim::engine::{EngineKind, SimBuilder};
use ppsim::epidemic::OneWayEpidemic;
// The peak-RSS watermark is read through the telemetry gauge surface (which
// `ppsim::mem` backs), the same API the timing stream exports it under.
use ppsim::telemetry::{peak_rss_bytes, reset_peak_rss};
use ppsim::{parallel_time, CountConfiguration};

/// Index of the informed state under `OneWayEpidemic`'s encoding.
const INFORMED: usize = 1;

/// Runs one clean epidemic trial to completion and returns the parallel time.
fn epidemic_completion_time(n: usize, kind: EngineKind, seed: u64) -> f64 {
    let mut sim = SimBuilder::new(OneWayEpidemic::new(n, 1))
        .kind(kind)
        .seed(seed)
        .build();
    let mut done = |c: &CountConfiguration| c.count(INFORMED) == c.population();
    let out = sim.run_until(&mut done, u64::MAX);
    assert!(
        out.satisfied,
        "epidemic must complete at n = {n} ({kind:?})"
    );
    parallel_time(out.interactions, n)
}

/// Batched and multi-batch engines agree on the `n = 10⁷` epidemic's mean
/// completion time to a coarse tolerance. The epidemic takes `Θ(log n)`
/// parallel time with concentration, so 8 trials per engine at a 15% margin
/// is far outside the noise floor while staying cheap in release mode.
#[test]
#[ignore = "release-mode smoke: ~seconds per trial at n = 10^7"]
fn epidemic_means_cross_check_at_ten_million() {
    const N: usize = 10_000_000;
    const TRIALS: u64 = 8;
    let mean = |kind: EngineKind| {
        (0..TRIALS)
            .map(|t| epidemic_completion_time(N, kind, 0xE10_0000 + t))
            .sum::<f64>()
            / TRIALS as f64
    };
    let batched = mean(EngineKind::Batched);
    let multibatch = mean(EngineKind::MultiBatch);
    let rel = (batched - multibatch).abs() / batched;
    assert!(
        rel < 0.15,
        "batched mean {batched:.3} vs multibatch mean {multibatch:.3} \
         diverge by {:.1}% (> 15%)",
        rel * 100.0
    );
    // Sanity: both are in the right ballpark for 2 ln n parallel time.
    let expected = 2.0 * (N as f64).ln();
    for (label, t) in [("batched", batched), ("multibatch", multibatch)] {
        assert!(
            t > 0.5 * expected && t < 2.0 * expected,
            "{label} mean {t:.3} outside [{:.3}, {:.3}]",
            0.5 * expected,
            2.0 * expected
        );
    }
}

/// The tentpole: a single `n = 10⁸` run completes under [`EngineKind::Auto`]
/// and peak RSS stays under 2 GiB — i.e. no per-agent allocation survives on
/// the clean count paths and no count product overflows en route.
#[test]
#[ignore = "release-mode smoke: one full run at n = 10^8"]
fn epidemic_completes_at_one_hundred_million_under_auto() {
    const N: usize = 100_000_000;
    const GIB: u64 = 1 << 30;
    // Best effort: on Linux this clears the watermark so the measurement
    // covers this test rather than whatever ran before it in the process.
    let _ = reset_peak_rss();
    let t = epidemic_completion_time(N, EngineKind::Auto, 20_260_808);
    let expected = 2.0 * (N as f64).ln();
    assert!(
        t > 0.5 * expected && t < 2.0 * expected,
        "completion time {t:.3} outside [{:.3}, {:.3}]",
        0.5 * expected,
        2.0 * expected
    );
    if let Some(peak) = peak_rss_bytes() {
        assert!(
            peak < 2 * GIB,
            "peak RSS {:.1} MiB exceeds the 2 GiB budget",
            peak as f64 / (1 << 20) as f64
        );
    }
}
