//! Property-based tests for the simulation substrate.

use ppsim::stats::{log_log_slope, Histogram};
use ppsim::{
    parallel_time, AgentId, Configuration, CountConfiguration, EnumerableProtocol, InteractionCtx,
    OrderedPair, Protocol, Scheduler, SimRng, Summary, SyntheticCoin, UniformScheduler,
};
use proptest::prelude::*;
use rand::distributions::{
    hypergeometric_split, multinomial_split, Binomial, Distribution, Geometric, Hypergeometric,
};
use rand::RngCore;

/// A protocol whose state is its own index in `0..k` — just enough structure
/// to exercise the count/per-agent conversions.
struct IndexedStates {
    n: usize,
    k: usize,
}

impl Protocol for IndexedStates {
    type State = usize;
    fn population_size(&self) -> usize {
        self.n
    }
    fn interact(&self, _u: &mut usize, _v: &mut usize, _ctx: &mut InteractionCtx<'_>) {}
}

impl EnumerableProtocol for IndexedStates {
    fn num_states(&self) -> usize {
        self.k
    }
    fn encode(&self, state: &usize) -> usize {
        *state
    }
    fn decode(&self, index: usize) -> usize {
        index
    }
}

proptest! {
    /// The uniform scheduler only ever returns valid ordered pairs.
    #[test]
    fn uniform_scheduler_pairs_are_always_valid(n in 2usize..40, seed in any::<u64>()) {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut sched = UniformScheduler::new();
        for _ in 0..50 {
            let pair = sched.next_pair(n, &mut rng).unwrap();
            prop_assert!(pair.initiator.index() < n);
            prop_assert!(pair.responder.index() < n);
            prop_assert_ne!(pair.initiator, pair.responder);
        }
    }

    /// Summaries are order statistics: min ≤ p10 ≤ median ≤ p90 ≤ max and the
    /// mean lies between min and max.
    #[test]
    fn summary_order_statistics_are_ordered(values in prop::collection::vec(-1e6f64..1e6, 1..64)) {
        let s = Summary::of(&values);
        prop_assert!(s.min <= s.p10 + 1e-9);
        prop_assert!(s.p10 <= s.median + 1e-9);
        prop_assert!(s.median <= s.p90 + 1e-9);
        prop_assert!(s.p90 <= s.max + 1e-9);
        prop_assert!(s.mean >= s.min - 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert_eq!(s.count, values.len());
    }

    /// A histogram never loses observations.
    #[test]
    fn histogram_conserves_observations(values in prop::collection::vec(-10f64..20.0, 0..200)) {
        let mut h = Histogram::new(0.0, 10.0, 7);
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.total() as usize, values.len());
    }

    /// The log-log slope of an exact power law recovers its exponent.
    #[test]
    fn log_log_slope_recovers_power_laws(
        exponent in -3.0f64..3.0,
        scale in 0.1f64..100.0,
        points in 2usize..12,
    ) {
        let data: Vec<(f64, f64)> = (1..=points)
            .map(|i| {
                let x = (i * 2) as f64;
                (x, scale * x.powf(exponent))
            })
            .collect();
        let slope = log_log_slope(&data);
        prop_assert!((slope - exponent).abs() < 1e-6, "slope {slope} vs exponent {exponent}");
    }

    /// Parallel time is linear in the interaction count.
    #[test]
    fn parallel_time_is_interactions_over_n(interactions in 0u64..1_000_000, n in 1usize..1000) {
        let t = parallel_time(interactions, n);
        prop_assert!((t * n as f64 - interactions as f64).abs() < 1e-6);
    }

    /// Synthetic-coin samples are always inside the sample space, and a
    /// sample is available exactly when a full window of observations has
    /// been collected.
    #[test]
    fn synthetic_coin_samples_stay_in_range(
        n_values in 2u64..2000,
        bits in prop::collection::vec(any::<bool>(), 0..200),
    ) {
        let mut coin = SyntheticCoin::new(n_values);
        let mut observed = 0usize;
        for bit in bits {
            coin.observe(bit);
            observed += 1;
            if observed >= coin.bits() as usize {
                prop_assert!(coin.ready());
                let sample = coin.sample().unwrap();
                prop_assert!(sample < n_values);
                observed = 0;
            } else {
                prop_assert!(!coin.ready());
                prop_assert!(coin.sample().is_none());
            }
        }
    }

    /// Configuration pair access never aliases and preserves all other slots.
    #[test]
    fn with_pair_mut_only_touches_the_pair(
        n in 2usize..30,
        a in 0usize..30,
        b in 0usize..30,
    ) {
        let a = a % n;
        let b = b % n;
        prop_assume!(a != b);
        let mut config: Configuration<u64> = (0..n as u64).collect();
        config.with_pair_mut(AgentId::new(a), AgentId::new(b), |x, y| {
            *x += 1000;
            *y += 2000;
        });
        for i in 0..n {
            let expected = if i == a {
                i as u64 + 1000
            } else if i == b {
                i as u64 + 2000
            } else {
                i as u64
            };
            prop_assert_eq!(config[i], expected);
        }
    }

    /// Geometric samples have the right support and track the mean
    /// `(1 - p)/p` over a modest sample.
    #[test]
    fn geometric_sampler_tracks_its_mean(p_mil in 50u64..950, seed in any::<u64>()) {
        let p = p_mil as f64 / 1000.0;
        let d = Geometric::new(p).unwrap();
        let mut rng = SimRng::seed_from_u64(seed);
        let samples = 400;
        let mean = (0..samples).map(|_| d.sample(&mut rng) as f64).sum::<f64>() / samples as f64;
        let expected = (1.0 - p) / p;
        // σ of the sample mean is √(1-p)/(p·√samples); 6σ + slack margin.
        let margin = 6.0 * (1.0 - p).sqrt() / (p * (samples as f64).sqrt()) + 0.05;
        prop_assert!(
            (mean - expected).abs() < margin,
            "p {p}: mean {mean} vs expected {expected} (margin {margin})"
        );
    }

    /// Binomial samples stay in `0..=n`, hit the endpoints for degenerate
    /// `p`, and track the mean `n·p`.
    #[test]
    fn binomial_sampler_stays_in_range_and_tracks_mean(
        n in 1u64..400,
        p_mil in 0u64..=1000,
        seed in any::<u64>(),
    ) {
        let p = p_mil as f64 / 1000.0;
        let d = Binomial::new(n, p).unwrap();
        let mut rng = SimRng::seed_from_u64(seed);
        let samples = 120;
        let mut sum = 0.0;
        for _ in 0..samples {
            let x = d.sample(&mut rng);
            prop_assert!(x <= n, "Bin({n},{p}) sample {x} above n");
            if p == 0.0 {
                prop_assert_eq!(x, 0);
            }
            if p == 1.0 {
                prop_assert_eq!(x, n);
            }
            sum += x as f64;
        }
        let mean = sum / samples as f64;
        let expected = n as f64 * p;
        // 6σ margin on the sample mean, σ = √(np(1-p)/samples).
        let margin = 6.0 * (n as f64 * p * (1.0 - p) / samples as f64).sqrt() + 0.5;
        prop_assert!(
            (mean - expected).abs() < margin,
            "Bin({n},{p}): mean {mean} vs {expected} (margin {margin})"
        );
    }

    /// Hypergeometric samples always land inside the support
    /// `max(0, k + K − N) ..= min(k, K)` and track the mean `k·K/N`.
    #[test]
    fn hypergeometric_sampler_respects_support_and_mean(
        total in 2u64..5000,
        successes_pct in 0u64..=100,
        draws_pct in 0u64..=100,
        seed in any::<u64>(),
    ) {
        let successes = total * successes_pct / 100;
        let draws = total * draws_pct / 100;
        let d = Hypergeometric::new(total, successes, draws).unwrap();
        let mut rng = SimRng::seed_from_u64(seed);
        let samples = 150;
        let mut sum = 0.0;
        for _ in 0..samples {
            let x = d.sample(&mut rng);
            prop_assert!(
                (d.support_min()..=d.support_max()).contains(&x),
                "Hyp({total},{successes},{draws}) sample {x} outside [{}, {}]",
                d.support_min(),
                d.support_max()
            );
            sum += x as f64;
        }
        let mean = sum / samples as f64;
        let expected = draws as f64 * successes as f64 / total as f64;
        // σ² = k·(K/N)·(1−K/N)·(N−k)/(N−1); 6σ margin on the sample mean.
        let p = successes as f64 / total as f64;
        let fpc = (total - draws) as f64 / (total as f64 - 1.0);
        let sigma = (draws as f64 * p * (1.0 - p) * fpc / samples as f64).sqrt();
        prop_assert!(
            (mean - expected).abs() < 6.0 * sigma + 0.5,
            "Hyp({total},{successes},{draws}): mean {mean} vs {expected}"
        );
    }

    /// Degenerate hypergeometric parameters are single-point distributions:
    /// drawing nothing, draining the urn, and one-color urns need (and
    /// consume) no randomness at all.
    #[test]
    fn hypergeometric_degenerate_cases_are_deterministic(
        total in 1u64..1000,
        successes_pct in 0u64..=100,
        seed in any::<u64>(),
    ) {
        let successes = total * successes_pct / 100;
        let mut rng = SimRng::seed_from_u64(seed);
        // k = 0.
        prop_assert_eq!(Hypergeometric::new(total, successes, 0).unwrap().sample(&mut rng), 0);
        // k = N drains the urn.
        prop_assert_eq!(
            Hypergeometric::new(total, successes, total).unwrap().sample(&mut rng),
            successes
        );
        // Single-color urns.
        prop_assert_eq!(Hypergeometric::new(total, 0, total / 2).unwrap().sample(&mut rng), 0);
        prop_assert_eq!(
            Hypergeometric::new(total, total, total / 2).unwrap().sample(&mut rng),
            total / 2
        );
    }

    /// A multivariate hypergeometric split conserves the draw count and
    /// never draws more of a color than the urn holds.
    #[test]
    fn hypergeometric_split_is_a_valid_sub_multiset(
        counts in prop::collection::vec(0u64..60, 1..12),
        draws_pct in 0u64..=100,
        seed in any::<u64>(),
    ) {
        let urn: u64 = counts.iter().sum();
        let draws = urn * draws_pct / 100;
        let mut rng = SimRng::seed_from_u64(seed);
        let split = hypergeometric_split(&counts, draws, &mut rng);
        prop_assert_eq!(split.len(), counts.len());
        prop_assert_eq!(split.iter().sum::<u64>(), draws);
        for (i, (&got, &cap)) in split.iter().zip(&counts).enumerate() {
            prop_assert!(got <= cap, "color {}: drew {} of {}", i, got, cap);
        }
    }

    /// A multinomial split conserves the trial count, gives zero-weight
    /// outcomes nothing, and tracks the expected allocation.
    #[test]
    fn multinomial_split_conserves_trials(
        trials in 0u64..2000,
        weights_raw in prop::collection::vec(0u64..100, 1..8),
        seed in any::<u64>(),
    ) {
        prop_assume!(weights_raw.iter().sum::<u64>() > 0);
        let weights: Vec<f64> = weights_raw.iter().map(|&w| w as f64).collect();
        let mut rng = SimRng::seed_from_u64(seed);
        let split = multinomial_split(trials, &weights, &mut rng);
        prop_assert_eq!(split.len(), weights.len());
        prop_assert_eq!(split.iter().sum::<u64>(), trials);
        let total_w: f64 = weights.iter().sum();
        for (i, (&got, &w)) in split.iter().zip(&weights) .enumerate() {
            if w == 0.0 {
                prop_assert_eq!(got, 0, "zero-weight outcome {} drew {}", i, got);
            } else {
                let expected = trials as f64 * w / total_w;
                let sigma = (trials as f64 * (w / total_w) * (1.0 - w / total_w)).sqrt();
                prop_assert!(
                    (got as f64 - expected).abs() < 8.0 * sigma + 1.0,
                    "outcome {}: {} vs expected {}",
                    i, got, expected
                );
            }
        }
    }

    /// Converting a per-agent configuration to counts and back preserves the
    /// multiset of states exactly (order is meaningless for anonymous
    /// agents).
    #[test]
    fn count_configuration_round_trip_preserves_multisets(
        k in 1usize..6,
        raw in prop::collection::vec(0usize..100, 1..60),
    ) {
        let states: Vec<usize> = raw.iter().map(|s| s % k).collect();
        let protocol = IndexedStates { n: states.len(), k };
        let config = Configuration::from_states(states.clone());
        let counts = CountConfiguration::from_configuration(&protocol, &config);
        prop_assert_eq!(counts.population() as usize, states.len());
        prop_assert_eq!(counts.counts().iter().sum::<u64>() as usize, states.len());
        for state in 0..k {
            let expected = states.iter().filter(|&&s| s == state).count() as u64;
            prop_assert_eq!(counts.count(state), expected, "state {}", state);
        }
        // Round trip: per-agent → counts → per-agent → counts is a fixpoint.
        let back = counts.to_configuration(&protocol);
        prop_assert_eq!(back.len(), config.len());
        let again = CountConfiguration::from_configuration(&protocol, &back);
        prop_assert_eq!(counts.counts(), again.counts());
    }

    /// A uniform multinomial sample is a valid configuration: counts sum to
    /// the population for any state-space size.
    #[test]
    fn multinomial_sample_conserves_population(
        k in 1usize..12,
        population in 1u64..5000,
        seed in any::<u64>(),
    ) {
        let mut rng = SimRng::seed_from_u64(seed);
        let counts = CountConfiguration::multinomial_uniform(k, population, &mut rng);
        prop_assert_eq!(counts.num_states(), k);
        prop_assert_eq!(counts.counts().iter().sum::<u64>(), population);
    }

    /// Seed derivation is injective in practice over small trial ranges.
    #[test]
    fn derived_seeds_do_not_collide(base in any::<u64>()) {
        let seeds: Vec<u64> = (0..64).map(|i| ppsim::rng::derive_seed(base, i)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), seeds.len());
    }
}

/// Deterministic regression: the same seed yields the same interaction
/// sequence (pairs drawn from the scheduler).
#[test]
fn scheduler_stream_is_reproducible() {
    let draw = |seed: u64| -> Vec<OrderedPair> {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut sched = UniformScheduler::new();
        (0..32)
            .map(|_| sched.next_pair(9, &mut rng).unwrap())
            .collect()
    };
    assert_eq!(draw(5), draw(5));
    assert_ne!(draw(5), draw(6));
    // Consuming the RNG elsewhere changes subsequent draws (sanity check that
    // the scheduler actually uses the provided RNG).
    let mut rng = SimRng::seed_from_u64(5);
    let _ = rng.next_u64();
    let mut sched = UniformScheduler::new();
    let shifted: Vec<OrderedPair> = (0..32)
        .map(|_| sched.next_pair(9, &mut rng).unwrap())
        .collect();
    assert_ne!(draw(5), shifted);
}

mod fleet_merge {
    //! TrialFleet merge-aggregation equals the sequential single-pass
    //! statistics on random trial sets.

    use ppsim::fleet::{FleetStats, KsReservoir, RunningStats};
    use ppsim::TrialFleet;
    use proptest::prelude::*;

    /// Relative-tolerance comparison for values accumulated in different
    /// float association orders.
    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
    }

    proptest! {
        /// Merging chunked RunningStats accumulators in order equals one
        /// sequential pass, up to reassociation round-off.
        #[test]
        fn chunked_running_stats_merge_equals_single_pass(
            values in prop::collection::vec(-1e6f64..1e6, 1..200),
            chunk in 1usize..40,
        ) {
            let mut single = RunningStats::new();
            values.iter().for_each(|v| single.push(*v));

            let mut merged = RunningStats::new();
            for block in values.chunks(chunk) {
                let mut acc = RunningStats::new();
                block.iter().for_each(|v| acc.push(*v));
                merged.merge(&acc);
            }

            prop_assert_eq!(merged.count(), single.count());
            prop_assert!(close(merged.mean(), single.mean()));
            prop_assert!(
                (merged.sample_variance() - single.sample_variance()).abs()
                    <= 1e-6 * (1.0 + single.sample_variance().abs())
            );
            prop_assert_eq!(merged.min(), single.min());
            prop_assert_eq!(merged.max(), single.max());
        }

        /// An uncompressed reservoir merge is exactly the sorted union.
        #[test]
        fn reservoir_merge_below_cap_is_exact(
            a in prop::collection::vec(-1e3f64..1e3, 0..50),
            b in prop::collection::vec(-1e3f64..1e3, 0..50),
        ) {
            let mut ra = KsReservoir::new(128);
            let mut rb = KsReservoir::new(128);
            a.iter().for_each(|v| ra.push(*v));
            b.iter().for_each(|v| rb.push(*v));
            ra.merge(&rb);

            let mut expected: Vec<f64> = a.iter().chain(&b).copied().collect();
            expected.sort_by(f64::total_cmp);
            prop_assert_eq!(ra.samples(), &expected[..]);
        }

        /// A compressed reservoir stays sorted, at capacity, and keeps the
        /// true extremes.
        #[test]
        fn reservoir_compression_preserves_extremes(
            values in prop::collection::vec(-1e3f64..1e3, 20..200),
            cap in 2usize..16,
        ) {
            let mut r = KsReservoir::new(cap);
            let mut other = KsReservoir::new(cap);
            values.iter().for_each(|v| other.push(*v));
            r.merge(&other);

            let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let kept = r.samples();
            prop_assert!(kept.len() <= cap);
            prop_assert_eq!(kept[0], lo);
            prop_assert_eq!(kept[kept.len() - 1], hi);
            prop_assert!(kept.windows(2).all(|w| w[0] <= w[1]));
        }

        /// TrialFleet::run_stats over a synthetic observation function
        /// matches a hand-rolled sequential fold: identical integer counts
        /// and extremes, float moments within reassociation tolerance —
        /// for every fleet size and chunk size.
        #[test]
        fn fleet_run_stats_equals_sequential_fold(
            trials in 1usize..150,
            base in any::<u64>(),
            chunk in 1usize..48,
        ) {
            let observe = |seed: u64| -> Option<f64> {
                if seed % 5 == 0 {
                    None
                } else {
                    Some((seed % 4096) as f64 - 2048.0 + (seed % 17) as f64 / 17.0)
                }
            };
            let fleet = TrialFleet::new(trials, base).stats_chunk(chunk);
            let parallel = fleet.run_stats(observe);

            let mut sequential = FleetStats::new();
            for i in 0..trials {
                sequential.record(observe(fleet.trial_seed(i)));
            }

            prop_assert_eq!(parallel.trials, sequential.trials);
            prop_assert_eq!(parallel.successes, sequential.successes);
            if parallel.successes > 0 {
                prop_assert!(close(parallel.value.mean(), sequential.value.mean()));
                prop_assert!(
                    (parallel.value.sample_variance() - sequential.value.sample_variance()).abs()
                        <= 1e-6 * (1.0 + sequential.value.sample_variance().abs())
                );
                prop_assert_eq!(parallel.value.min(), sequential.value.min());
                prop_assert_eq!(parallel.value.max(), sequential.value.max());
                // Under the reservoir cap both sides hold the full sorted
                // sample, so they agree exactly.
                prop_assert_eq!(parallel.samples(), sequential.samples());
            }
        }

        /// FleetStats::merge is consistent with recording the observations
        /// one after the other.
        #[test]
        fn fleet_stats_merge_equals_concatenation(
            raw_a in prop::collection::vec(-1e3f64..1e3, 0..60),
            raw_b in prop::collection::vec(-1e3f64..1e3, 0..60),
        ) {
            // Encode failures as the low quarter of the range, so random
            // trial sets mix Some and None observations.
            let to_obs = |v: &f64| if *v < -500.0 { None } else { Some(*v) };
            let a: Vec<Option<f64>> = raw_a.iter().map(to_obs).collect();
            let b: Vec<Option<f64>> = raw_b.iter().map(to_obs).collect();
            let mut left = FleetStats::new();
            let mut right = FleetStats::new();
            a.iter().for_each(|o| left.record(*o));
            b.iter().for_each(|o| right.record(*o));
            left.merge(&right);

            let mut whole = FleetStats::new();
            a.iter().chain(&b).for_each(|o| whole.record(*o));

            prop_assert_eq!(left.trials, whole.trials);
            prop_assert_eq!(left.successes, whole.successes);
            if whole.successes > 0 {
                prop_assert!(close(left.value.mean(), whole.value.mean()));
                prop_assert_eq!(left.value.min(), whole.value.min());
                prop_assert_eq!(left.value.max(), whole.value.max());
                prop_assert_eq!(left.samples(), whole.samples());
            }
        }
    }
}
