//! Property-based tests for the simulation substrate.

use ppsim::stats::{log_log_slope, Histogram};
use ppsim::{
    parallel_time, AgentId, Configuration, OrderedPair, Scheduler, SimRng, Summary, SyntheticCoin,
    UniformScheduler,
};
use proptest::prelude::*;
use rand::RngCore;

proptest! {
    /// The uniform scheduler only ever returns valid ordered pairs.
    #[test]
    fn uniform_scheduler_pairs_are_always_valid(n in 2usize..40, seed in any::<u64>()) {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut sched = UniformScheduler::new();
        for _ in 0..50 {
            let pair = sched.next_pair(n, &mut rng).unwrap();
            prop_assert!(pair.initiator.index() < n);
            prop_assert!(pair.responder.index() < n);
            prop_assert_ne!(pair.initiator, pair.responder);
        }
    }

    /// Summaries are order statistics: min ≤ p10 ≤ median ≤ p90 ≤ max and the
    /// mean lies between min and max.
    #[test]
    fn summary_order_statistics_are_ordered(values in prop::collection::vec(-1e6f64..1e6, 1..64)) {
        let s = Summary::of(&values);
        prop_assert!(s.min <= s.p10 + 1e-9);
        prop_assert!(s.p10 <= s.median + 1e-9);
        prop_assert!(s.median <= s.p90 + 1e-9);
        prop_assert!(s.p90 <= s.max + 1e-9);
        prop_assert!(s.mean >= s.min - 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert_eq!(s.count, values.len());
    }

    /// A histogram never loses observations.
    #[test]
    fn histogram_conserves_observations(values in prop::collection::vec(-10f64..20.0, 0..200)) {
        let mut h = Histogram::new(0.0, 10.0, 7);
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.total() as usize, values.len());
    }

    /// The log-log slope of an exact power law recovers its exponent.
    #[test]
    fn log_log_slope_recovers_power_laws(
        exponent in -3.0f64..3.0,
        scale in 0.1f64..100.0,
        points in 2usize..12,
    ) {
        let data: Vec<(f64, f64)> = (1..=points)
            .map(|i| {
                let x = (i * 2) as f64;
                (x, scale * x.powf(exponent))
            })
            .collect();
        let slope = log_log_slope(&data);
        prop_assert!((slope - exponent).abs() < 1e-6, "slope {slope} vs exponent {exponent}");
    }

    /// Parallel time is linear in the interaction count.
    #[test]
    fn parallel_time_is_interactions_over_n(interactions in 0u64..1_000_000, n in 1usize..1000) {
        let t = parallel_time(interactions, n);
        prop_assert!((t * n as f64 - interactions as f64).abs() < 1e-6);
    }

    /// Synthetic-coin samples are always inside the sample space, and a
    /// sample is available exactly when a full window of observations has
    /// been collected.
    #[test]
    fn synthetic_coin_samples_stay_in_range(
        n_values in 2u64..2000,
        bits in prop::collection::vec(any::<bool>(), 0..200),
    ) {
        let mut coin = SyntheticCoin::new(n_values);
        let mut observed = 0usize;
        for bit in bits {
            coin.observe(bit);
            observed += 1;
            if observed >= coin.bits() as usize {
                prop_assert!(coin.ready());
                let sample = coin.sample().unwrap();
                prop_assert!(sample < n_values);
                observed = 0;
            } else {
                prop_assert!(!coin.ready());
                prop_assert!(coin.sample().is_none());
            }
        }
    }

    /// Configuration pair access never aliases and preserves all other slots.
    #[test]
    fn with_pair_mut_only_touches_the_pair(
        n in 2usize..30,
        a in 0usize..30,
        b in 0usize..30,
    ) {
        let a = a % n;
        let b = b % n;
        prop_assume!(a != b);
        let mut config: Configuration<u64> = (0..n as u64).collect();
        config.with_pair_mut(AgentId::new(a), AgentId::new(b), |x, y| {
            *x += 1000;
            *y += 2000;
        });
        for i in 0..n {
            let expected = if i == a {
                i as u64 + 1000
            } else if i == b {
                i as u64 + 2000
            } else {
                i as u64
            };
            prop_assert_eq!(config[i], expected);
        }
    }

    /// Seed derivation is injective in practice over small trial ranges.
    #[test]
    fn derived_seeds_do_not_collide(base in any::<u64>()) {
        let seeds: Vec<u64> = (0..64).map(|i| ppsim::rng::derive_seed(base, i)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), seeds.len());
    }
}

/// Deterministic regression: the same seed yields the same interaction
/// sequence (pairs drawn from the scheduler).
#[test]
fn scheduler_stream_is_reproducible() {
    let draw = |seed: u64| -> Vec<OrderedPair> {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut sched = UniformScheduler::new();
        (0..32)
            .map(|_| sched.next_pair(9, &mut rng).unwrap())
            .collect()
    };
    assert_eq!(draw(5), draw(5));
    assert_ne!(draw(5), draw(6));
    // Consuming the RNG elsewhere changes subsequent draws (sanity check that
    // the scheduler actually uses the provided RNG).
    let mut rng = SimRng::seed_from_u64(5);
    let _ = rng.next_u64();
    let mut sched = UniformScheduler::new();
    let shifted: Vec<OrderedPair> = (0..32)
        .map(|_| sched.next_pair(9, &mut rng).unwrap())
        .collect();
    assert_ne!(draw(5), shifted);
}
