//! Cross-crate integration tests for the soft-reset mechanism (Section 3.2):
//! corruption of the circulating-message system in a stabilized population
//! must be repaired *without* a hard reset and *without* touching the
//! ranking.

use analysis::experiments::reset::soft_reset_probe;
use ppsim::rng::derive_seed;
use ppsim::{SimRng, Simulation};
use ssle_core::{output, AgentState, ElectLeader, Scenario};

#[test]
fn corrupted_messages_never_cause_a_hard_reset_and_preserve_the_ranking() {
    let (n, r) = (16, 4);
    for (i, corrupted) in [1usize, 4, 8].into_iter().enumerate() {
        let (hard_reset, ranking_preserved) = soft_reset_probe(n, r, corrupted, 1000 + i as u64);
        assert!(
            !hard_reset,
            "{corrupted} corrupted agents must be repaired by soft resets only"
        );
        assert!(
            ranking_preserved,
            "{corrupted} corrupted agents: the ranking must survive the repair"
        );
    }
}

#[test]
fn soft_reset_advances_the_generation_counter() {
    let (n, r) = (16, 4);
    let protocol = ElectLeader::with_n_r(n, r).unwrap();
    let budget = protocol.params().suggested_budget();
    let mut rng = SimRng::seed_from_u64(derive_seed(7, 0));
    let config = Scenario::CorruptedMessages(4).generate(&protocol, &mut rng);
    let mut sim = Simulation::new(protocol, config, derive_seed(7, 1));
    let outcome = sim.run_until(
        |c| {
            c.any(|s| match s {
                AgentState::Verifying(v) => v.sv.generation != 0,
                _ => false,
            })
        },
        budget,
    );
    assert!(
        outcome.satisfied,
        "a soft reset (generation advance) must occur"
    );
    assert!(
        output::is_correct_output(sim.configuration()),
        "the ranking must still be correct when the first soft reset fires"
    );
}

#[test]
fn genuine_collisions_still_force_a_hard_reset_even_off_probation() {
    // The probation mechanism must not mask real collisions: start from a
    // duplicated ranking with probation already expired. The first detection
    // soft-resets, but the collision persists, is re-detected while the agent
    // is back on probation, and a hard reset follows (Section 3.2).
    let (n, r) = (16, 8);
    let protocol = ElectLeader::with_n_r(n, r).unwrap();
    let budget = protocol.params().suggested_budget();
    let mut rng = SimRng::seed_from_u64(3);
    let mut config = Scenario::DuplicateRanks(2).generate(&protocol, &mut rng);
    for state in config.iter_mut() {
        if let AgentState::Verifying(v) = state {
            v.sv.probation_timer = 0;
        }
    }
    let mut sim = Simulation::new(protocol, config, 4);
    let outcome = sim.run_until(|c| c.any(|s| s.is_resetting()), budget);
    assert!(
        outcome.satisfied,
        "a genuine duplicated rank must eventually trigger a hard reset"
    );
}
