//! End-to-end contract tests for the experiment service.
//!
//! The daemon (`ssle-server`) runs in-process on an ephemeral loopback
//! port; the client (`ssle-client`) talks to it over real sockets. The two
//! assertions that define the subsystem:
//!
//! 1. **Byte identity** — an HTTP job result is byte-for-byte identical to
//!    `LocalService` for the same spec (on the timing-free sweep workload).
//! 2. **Cache correctness** — re-submitting the identical spec is served
//!    from the content-addressed cache without re-running, observable in
//!    the `/healthz` counters and the `cached` status flag.

use std::time::Duration;

use analysis::{ExperimentService, JobSpec, JobState, LocalService, Scale, ServiceError};
use ssle_client::HttpClient;
use ssle_server::{spawn, ServerConfig};

/// Short polling so queued→done transitions on tiny jobs are cheap.
fn client_for(addr: std::net::SocketAddr) -> HttpClient {
    HttpClient::new(addr.to_string()).with_polling(Duration::from_millis(10), 6_000)
}

fn start(cache_dir: Option<std::path::PathBuf>) -> ssle_server::ServerHandle {
    spawn(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        cache_dir,
    })
    .expect("daemon starts on an ephemeral port")
}

#[test]
fn remote_result_is_byte_identical_to_local() {
    let server = start(None);
    let client = client_for(server.addr());
    let spec = JobSpec::new("sweep", Scale::Tiny);

    let remote = client.run_job(&spec).expect("remote job completes");
    let local = LocalService.run_job(&spec).expect("local job completes");
    assert_eq!(
        remote, local,
        "HTTP and in-process backends must agree byte-for-byte"
    );
    assert!(remote.contains("\"title\""));
    server.shutdown();
}

#[test]
fn identical_resubmission_is_served_from_cache() {
    let server = start(None);
    let client = client_for(server.addr());
    let spec = JobSpec::new("sweep", Scale::Tiny).seed(777);

    let first = client.run_job(&spec).expect("first run completes");
    let before = client.health().expect("healthz responds");
    assert_eq!(before.cache_misses, 1, "first submission scheduled work");
    assert_eq!(before.jobs_completed, 1);

    // The re-submission must come back already done, flagged cached, with
    // the hit counter bumped and the miss counter untouched.
    let resubmitted = client.submit(&spec).expect("resubmission accepted");
    assert_eq!(resubmitted.state, JobState::Done);
    assert!(resubmitted.cached, "resubmission must be served from cache");
    let second = client
        .result(&resubmitted.job)
        .expect("cached result served");
    assert_eq!(second, first, "cache must serve the original bytes");

    let after = client.health().expect("healthz responds");
    assert_eq!(after.cache_hits, before.cache_hits + 1);
    assert_eq!(
        after.cache_misses, before.cache_misses,
        "no re-run was scheduled"
    );
    assert_eq!(
        after.jobs_completed, before.jobs_completed,
        "no extra execution"
    );
    server.shutdown();
}

#[test]
fn disk_cache_survives_a_daemon_restart() {
    let dir = std::env::temp_dir().join(format!("ssle-e2e-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let spec = JobSpec::new("sweep", Scale::Tiny).seed(31337);

    let first = {
        let server = start(Some(dir.clone()));
        let client = client_for(server.addr());
        let document = client.run_job(&spec).expect("first daemon computes");
        server.shutdown();
        document
    };
    assert!(
        dir.join(format!("{}.json", spec.cache_key())).is_file(),
        "result must be on disk under its cache key"
    );

    // A fresh daemon over the same directory serves the spec without
    // executing anything.
    let server = start(Some(dir.clone()));
    let client = client_for(server.addr());
    let status = client.submit(&spec).expect("resubmission accepted");
    assert_eq!(status.state, JobState::Done);
    assert!(status.cached);
    let replayed = client.result(&status.job).expect("served from disk");
    assert_eq!(replayed, first);
    let health = client.health().expect("healthz responds");
    assert_eq!(health.cache_hits, 1);
    assert_eq!(health.cache_misses, 0, "the fresh daemon never ran the job");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn api_errors_map_to_typed_service_errors() {
    let server = start(None);
    let client = client_for(server.addr());

    // Unknown experiment and constraint violations arrive as InvalidSpec
    // (the daemon folds both into its 400 response).
    assert!(matches!(
        client.submit(&JobSpec::new("e42", Scale::Tiny)),
        Err(ServiceError::InvalidSpec(_))
    ));
    assert!(matches!(
        client.submit(&JobSpec::new("sweep", Scale::Tiny).trials(0)),
        Err(ServiceError::InvalidSpec(_))
    ));
    // Unknown job ids are protocol errors on both read endpoints.
    assert!(matches!(
        client.status("feedfacefeedface"),
        Err(ServiceError::Protocol(_))
    ));
    assert!(matches!(
        client.result("feedfacefeedface"),
        Err(ServiceError::Protocol(_))
    ));
    server.shutdown();
}

#[test]
fn the_service_trait_is_backend_agnostic() {
    // The point of the trait: code written against `dyn ExperimentService`
    // cannot tell the backends apart.
    fn digest_of(service: &dyn ExperimentService, spec: &JobSpec) -> String {
        service.run_job(spec).expect("job completes")
    }
    let server = start(None);
    let client = client_for(server.addr());
    let spec = JobSpec::new("sweep", Scale::Tiny).trials(1);
    assert_eq!(digest_of(&LocalService, &spec), digest_of(&client, &spec));
    server.shutdown();
}
