//! Integration tests for `ppsim::telemetry`: the disabled handle must be
//! free and invisible (bit-identical trajectories, pinned snapshots
//! unmoved), the deterministic event stream must be byte-identical across
//! thread counts, and an adaptive run's trace must record every handoff at
//! exactly the absolute interaction indices engine introspection reports.

use ppsim::engine::PerStepEngine;
use ppsim::epidemic::OneWayEpidemic;
use ppsim::simulation::StabilizationOptions;
use ppsim::telemetry::{Counter, TraceEvent};
use ppsim::{
    AdaptiveConfig, BatchSimulation, EngineKind, MultiBatchSimulation, SimBuilder, Telemetry,
    TelemetryReport, TrialFleet,
};

/// The forced-switching policy the handoff-boundary regression in
/// `integration_batched.rs` pins — reused verbatim so the traced run below
/// is the *same* run, with telemetry watching.
fn switchy() -> AdaptiveConfig {
    AdaptiveConfig {
        low_activity: 0.05,
        high_activity: 0.10,
        check_interval: 256,
    }
}

/// A disabled handle records nothing — and is the builder default.
#[test]
fn disabled_telemetry_reports_nothing() {
    let telemetry = Telemetry::disabled();
    let mut sim = SimBuilder::new(OneWayEpidemic::new(256, 1))
        .kind(EngineKind::Batched)
        .seed(42)
        .telemetry(telemetry.clone())
        .build();
    sim.run(10_000);
    assert!(telemetry.report().is_none(), "disabled handle accumulated");
    // The builder default is the same disabled handle.
    let mut sim = SimBuilder::new(OneWayEpidemic::new(256, 1))
        .kind(EngineKind::Batched)
        .seed(42)
        .build();
    sim.run(10_000);
}

/// Telemetry never draws randomness or branches control flow: the same seed
/// produces the same trajectory with and without an enabled handle, for
/// every engine tier.
#[test]
fn enabled_telemetry_leaves_trajectories_untouched() {
    for kind in [
        EngineKind::PerStep,
        EngineKind::Batched,
        EngineKind::MultiBatch,
        EngineKind::Auto,
    ] {
        let run = |telemetry: Telemetry| {
            let mut sim = SimBuilder::new(OneWayEpidemic::new(256, 1))
                .kind(kind)
                .seed(9)
                .adaptive_config(switchy())
                .telemetry(telemetry)
                .build();
            let out = sim.run_until(&mut |c| c.count(1) == c.population(), u64::MAX);
            assert!(out.satisfied, "{kind:?}");
            (out.interactions, sim.counts().clone())
        };
        let bare = run(Telemetry::disabled());
        let watched = run(Telemetry::enabled());
        assert_eq!(bare, watched, "{kind:?}: telemetry perturbed the run");
    }
}

/// The pinned trajectory snapshots (the same constants
/// `integration_batched.rs` guards) must hold with telemetry enabled — and
/// the counters must agree with the engines' own introspection.
#[test]
fn pinned_snapshots_hold_with_telemetry_enabled() {
    let telemetry = Telemetry::enabled();
    let mut sim = BatchSimulation::clean(OneWayEpidemic::new(256, 1), 42);
    sim.set_telemetry(telemetry.clone());
    let out = sim.run_until(|c| c.count(1) == c.population(), u64::MAX);
    assert!(out.satisfied);
    assert_eq!(out.interactions, 3_143, "batched snapshot moved");
    let report = telemetry.report().expect("enabled handle has a report");
    assert_eq!(report.counter(Counter::BatchedInteractions), 3_143);
    assert_eq!(
        report.counter(Counter::BatchedActiveInteractions),
        sim.active_interactions()
    );
    assert!(report.counter(Counter::BatchedFenwickUpdates) > 0);
    // The one-way epidemic has a single non-silent pair: every pick forced.
    assert_eq!(
        report.counter(Counter::BatchedForcedPicks),
        sim.active_interactions()
    );

    let telemetry = Telemetry::enabled();
    let mut sim = MultiBatchSimulation::clean(OneWayEpidemic::new(256, 1), 42);
    sim.set_telemetry(telemetry.clone());
    let out = sim.run_until(|c| c.count(1) == c.population(), u64::MAX);
    assert!(out.satisfied);
    assert_eq!(out.interactions, 3_065, "multibatch snapshot moved");
    assert_eq!(sim.epochs(), 284, "epoch-count snapshot moved");
    let report = telemetry.report().expect("enabled handle has a report");
    assert_eq!(report.counter(Counter::MultiBatchInteractions), 3_065);
    assert_eq!(report.counter(Counter::MultiBatchEpochs), 284);
    assert_eq!(report.collision_length().count, 284);
    let groups = report.counter(Counter::MultiBatchGroupsSilent)
        + report.counter(Counter::MultiBatchGroupsDeterministic)
        + report.counter(Counter::MultiBatchGroupsMultinomial)
        + report.counter(Counter::MultiBatchGroupsBlind);
    assert!(groups > 0, "no group resolutions recorded");
}

/// Per-agent interaction metrics exist exactly where the granularity
/// contract says they can: on the per-step engine, when telemetry is on.
#[test]
fn per_step_engine_maintains_interaction_metrics_when_watched() {
    let telemetry = Telemetry::enabled();
    let mut sim = PerStepEngine::clean(OneWayEpidemic::new(64, 1), 3);
    sim.set_telemetry(telemetry.clone());
    let executed = sim.run(5_000);
    let metrics = sim.interaction_metrics().expect("metrics on while watched");
    assert_eq!(metrics.total(), executed, "every interaction recorded");
    let report = telemetry.report().unwrap();
    assert_eq!(report.counter(Counter::PerStepInteractions), executed);
    let balance = report.balance().expect("balance summary flushed");
    assert_eq!(balance.n, 64);
    assert_eq!(balance.total, executed);
    assert!(balance.min <= balance.max);
    // Unwatched engines keep no metrics.
    let mut bare = PerStepEngine::clean(OneWayEpidemic::new(64, 1), 3);
    bare.run(100);
    assert!(bare.interaction_metrics().is_none());
}

/// One trial of the fleet-aggregated trace: a small adaptive epidemic with
/// forced handoffs, returning its per-trial report.
fn traced_trial(seed: u64) -> TelemetryReport {
    let telemetry = Telemetry::enabled();
    let mut sim = SimBuilder::new(OneWayEpidemic::new(256, 1))
        .seed(seed)
        .adaptive_config(switchy())
        .telemetry(telemetry.clone())
        .build();
    let out = sim.run_until(&mut |c| c.count(1) == c.population(), u64::MAX);
    assert!(out.satisfied);
    telemetry.report().expect("enabled handle has a report")
}

/// The deterministic stream is byte-identical across forced 1/2/4-thread
/// pools: per-trial reports come back in trial order, merge in that order,
/// and carry no wall-clock fields.
#[test]
fn deterministic_stream_is_byte_identical_across_thread_counts() {
    let fleet = TrialFleet::new(12, 0x7E1E_3141);
    let merged_jsonl = |reports: Vec<TelemetryReport>| {
        let mut merged = TelemetryReport::default();
        for report in &reports {
            merged.merge(report);
        }
        merged.deterministic_jsonl()
    };
    let reference = merged_jsonl(fleet.run(traced_trial));
    assert!(reference.contains("\"event\":\"handoff\""));
    for threads in [1usize, 2, 4] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        let stream = merged_jsonl(pool.install(|| fleet.run(traced_trial)));
        assert_eq!(stream, reference, "{threads}-thread stream diverged");
    }
}

/// The traced twin of `auto_handoff_preserves_absolute_interaction_indices`
/// (same seed, same policy, same misaligned slices): the trace must record
/// every handoff, each at an absolute index that matches what engine
/// introspection reported at every slice boundary.
#[test]
fn auto_trace_records_handoffs_at_introspected_indices() {
    const N: usize = 512;
    let telemetry = Telemetry::enabled();
    let mut sim = SimBuilder::new(OneWayEpidemic::new(N, 1))
        .seed(7)
        .adaptive_config(switchy())
        .telemetry(telemetry.clone())
        .build_adaptive();
    // Introspection samples: (absolute interactions, handoffs) per slice.
    let mut samples = Vec::new();
    let mut total = 0u64;
    for chunk in [100u64, 333, 500, 777, 1_000, 123] {
        sim.run(chunk);
        total += chunk;
        assert_eq!(sim.interactions(), total, "absolute index drifted");
        samples.push((total, sim.handoffs()));
    }
    assert!(sim.handoffs() >= 1, "the warm-up must cross the threshold");
    let opts = StabilizationOptions::new(N, u64::MAX / 2).confirm_window(5_000);
    let res = sim.measure_stabilization(|c| c.count(1) == c.population(), opts);
    assert!(res.stabilized());
    assert_eq!(sim.current_kind(), EngineKind::Batched);

    let report = telemetry.report().expect("enabled handle has a report");
    let events = report.events();
    // First event: the initial engine selection (a sparse epidemic starts
    // batched, below the high-activity threshold).
    let TraceEvent::EngineSelected {
        kind,
        active_fraction,
    } = &events[0]
    else {
        panic!("first event must be engine_selected, got {:?}", events[0]);
    };
    assert_eq!(*kind, "batched");
    assert!(*active_fraction < switchy().high_activity);

    let handoffs: Vec<(u64, u64, &str, &str)> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Handoff {
                seq,
                index,
                from,
                to,
                ..
            } => Some((*seq, *index, *from, *to)),
            _ => None,
        })
        .collect();
    // Every handoff traced, none invented.
    assert_eq!(handoffs.len() as u64, sim.handoffs());
    assert_eq!(report.counter(Counter::AdaptiveHandoffs), sim.handoffs());
    let mut expected_from = "batched";
    for (position, &(seq, index, from, to)) in handoffs.iter().enumerate() {
        assert_eq!(seq, position as u64 + 1, "handoff seq out of order");
        assert_eq!(from, expected_from, "handoff direction broke the chain");
        assert_ne!(from, to);
        expected_from = to;
        // Activity checks — hence handoffs — land only on check-interval
        // boundaries, and indices are absolute.
        assert_eq!(index % switchy().check_interval, 0, "index off-boundary");
        assert!(index <= sim.interactions());
        if position > 0 {
            assert!(index > handoffs[position - 1].1, "indices not increasing");
        }
    }
    // The last handoff left the engine where introspection says it is.
    assert_eq!(handoffs.last().unwrap().3, sim.current_kind().label());
    // The trace indices agree with introspection at every slice boundary: a
    // handoff fires strictly after the boundary it was measured at, so the
    // handoffs introspection had seen by a boundary are exactly the traced
    // ones with a strictly smaller index.
    for &(boundary, seen) in &samples {
        let traced = handoffs
            .iter()
            .filter(|&&(_, i, _, _)| i < boundary)
            .count();
        assert_eq!(
            traced as u64, seen,
            "trace disagrees with introspection at interaction {boundary}"
        );
    }
}
