//! Integration tests for the batched count-based engine: statistical
//! equivalence with the per-step engine, and determinism regressions.
//!
//! The two engines draw randomness differently, so equal seeds give
//! different trajectories; what must agree is the *distribution* of
//! observables. The epidemic completion time is the sharpest such observable
//! available in closed form (mean ≈ 2·n·ln n for the one-way epidemic), so
//! the equivalence tests compare completion-time samples of both engines by
//! mean, variance, and a two-sample Kolmogorov–Smirnov distance. All seeds
//! are fixed, so these tests are deterministic — the tolerances carry wide
//! margins over the observed statistics rather than guarding against flake.

use ppsim::epidemic::{measure_epidemic_time, measure_epidemic_time_batched, OneWayEpidemic};
use ppsim::rng::derive_seed;
use ppsim::{BatchSimulation, CountConfiguration, Summary};

const N: usize = 512;
const TRIALS: u64 = 48;
const BASE_SEED: u64 = 0xBA7C_4ED0;

fn completion_samples(batched: bool) -> Vec<f64> {
    (0..TRIALS)
        .map(|trial| {
            let seed = derive_seed(BASE_SEED, trial);
            let protocol = OneWayEpidemic::new(N, 1);
            let t = if batched {
                measure_epidemic_time_batched(protocol, seed, u64::MAX)
            } else {
                measure_epidemic_time(protocol, seed, u64::MAX)
            };
            t.expect("epidemic completes") as f64
        })
        .collect()
}

/// Two-sample Kolmogorov–Smirnov statistic: the maximum distance between the
/// empirical CDFs.
fn ks_distance(a: &[f64], b: &[f64]) -> f64 {
    let mut a = a.to_vec();
    let mut b = b.to_vec();
    a.sort_by(|x, y| x.total_cmp(y));
    b.sort_by(|x, y| x.total_cmp(y));
    let (mut i, mut j, mut d) = (0usize, 0usize, 0f64);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            i += 1;
        } else {
            j += 1;
        }
        let fa = i as f64 / a.len() as f64;
        let fb = j as f64 / b.len() as f64;
        d = d.max((fa - fb).abs());
    }
    d
}

#[test]
fn engines_agree_on_the_completion_time_distribution() {
    let per_step = completion_samples(false);
    let batched = completion_samples(true);
    let s_ps = Summary::of(&per_step);
    let s_b = Summary::of(&batched);

    // Mean: both should sit near 2 n ln n ≈ 6390; the standard error of each
    // mean is ~2% of it, so a 12% tolerance is a > 4σ margin.
    let (m_ps, m_b) = (s_ps.mean, s_b.mean);
    let expected = 2.0 * (N as f64 - 1.0) * (N as f64).ln();
    assert!(
        (m_ps - m_b).abs() < 0.12 * m_ps,
        "means disagree: per-step {m_ps}, batched {m_b}"
    );
    for (engine, m) in [("per-step", m_ps), ("batched", m_b)] {
        assert!(
            (m - expected).abs() < 0.25 * expected,
            "{engine} mean {m} far from theory {expected}"
        );
    }

    // Variance: a factor-3 band around equality (the ratio of two 48-sample
    // variance estimates of the same distribution stays well inside it).
    let ratio = (s_ps.std_dev / s_b.std_dev).powi(2);
    assert!(
        (1.0 / 3.0..=3.0).contains(&ratio),
        "variance ratio {ratio} outside [1/3, 3]"
    );

    // KS: the 1% critical value for two 48-sample ECDFs is ≈ 0.33.
    let d = ks_distance(&per_step, &batched);
    assert!(d < 0.33, "KS distance {d} exceeds the 1% critical value");
}

#[test]
fn fixed_seed_reproduces_the_exact_trajectory() {
    let run = |seed: u64| -> (u64, u64, CountConfiguration) {
        let protocol = OneWayEpidemic::new(N, 1);
        let mut sim = BatchSimulation::clean(protocol, seed);
        let out = sim.run_until(|c| c.count(1) == c.population(), u64::MAX);
        assert!(out.satisfied);
        (
            out.interactions,
            sim.active_interactions(),
            sim.counts().clone(),
        )
    };
    let (interactions, active, counts) = run(123);
    let (interactions2, active2, counts2) = run(123);
    assert_eq!(interactions, interactions2);
    assert_eq!(active, active2);
    assert_eq!(counts, counts2);
    assert_ne!(run(124).0, interactions, "different seeds must diverge");
}

/// Snapshot of one full batched trajectory: a refactor of the engine, the
/// samplers, or the RNG that changes any draw will move this constant. Update
/// it only for *intentional* trajectory-affecting changes, and say so in the
/// commit message.
#[test]
fn batched_trajectory_snapshot_is_stable() {
    let protocol = OneWayEpidemic::new(256, 1);
    let mut sim = BatchSimulation::clean(protocol, 42);
    let out = sim.run_until(|c| c.count(1) == c.population(), u64::MAX);
    assert!(out.satisfied);
    assert_eq!(sim.counts().counts(), &[0, 256]);
    assert_eq!(sim.active_interactions(), 255);
    assert_eq!(out.interactions, 3_143, "trajectory snapshot moved");
}

/// The count representation and the per-agent representation describe the
/// same population: converting the final batched state to a per-agent
/// configuration preserves the multiset.
#[test]
fn batched_final_state_converts_to_a_full_configuration() {
    let protocol = OneWayEpidemic::new(100, 7);
    let mut sim = BatchSimulation::clean(protocol, 5);
    sim.run(1_000);
    let config = sim.to_configuration();
    assert_eq!(config.len(), 100);
    let informed = config.count_where(|s| *s);
    assert_eq!(informed as u64, sim.counts().count(1));
    assert!(informed >= 7, "sources stay informed");
}
