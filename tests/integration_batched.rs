//! Integration tests for the count-based engines behind the unified
//! `ppsim::engine` API: statistical equivalence with the per-step engine,
//! and determinism regressions.
//!
//! The engines draw randomness differently, so equal seeds give different
//! trajectories; what must agree is the *distribution* of observables. The
//! epidemic completion time is the sharpest such observable available in
//! closed form (mean ≈ 2·n·ln n for the one-way epidemic), so the
//! equivalence tests compare completion-time samples of the engines by
//! mean, variance, and a two-sample Kolmogorov–Smirnov distance; the same
//! statistics cover the enumerated baselines (direct-collision ranking,
//! loosely-stabilizing leader election) and — via the dynamic state indexer
//! (`ppsim::DiscoveredProtocol`) — `ElectLeader_r` itself. Every arm of
//! every comparison — the `Auto` adaptive tier included — goes through
//! `ppsim::SimBuilder`; there is no per-engine dispatch in this file. All
//! seeds are fixed, so these tests are deterministic — the tolerances carry
//! wide margins over the observed statistics rather than guarding against
//! flake.

use baselines::{DirectCollisionSsle, LooselyStabilizingLe};
use ppsim::epidemic::{measure_epidemic_time_with, OneWayEpidemic};
use ppsim::simulation::StabilizationOptions;
use ppsim::stats::ks_distance;
use ppsim::{
    AdaptiveConfig, BatchSimulation, CountConfiguration, DiscoveredProtocol, EngineKind,
    MultiBatchSimulation, SimBuilder, Summary, TrialFleet,
};
use ssle_core::{output, ElectLeader};

const N: usize = 512;
const TRIALS: usize = 48;
const BASE_SEED: u64 = 0xBA7C_4ED0;

/// An adaptive policy whose hysteresis band sits inside the test
/// populations' activity range, with a tight check interval — so the `Auto`
/// arms below exercise *real* handoffs (batched → multi-batch → batched for
/// a sparse epidemic), not a degenerate single-engine run. The equivalence
/// margins then certify that the handoff itself is distribution-preserving.
fn switchy() -> AdaptiveConfig {
    AdaptiveConfig {
        low_activity: 0.05,
        high_activity: 0.10,
        check_interval: 256,
    }
}

/// Trials fan out over worker threads via [`TrialFleet`]; the per-trial
/// seeds (`derive_seed(BASE_SEED, trial)`) and the returned sample order are
/// identical to the old sequential loop, so every tolerance below is
/// unaffected by the parallelism.
fn completion_samples(engine: EngineKind) -> Vec<f64> {
    TrialFleet::new(TRIALS, BASE_SEED).run(|seed| {
        let protocol = OneWayEpidemic::new(N, 1);
        measure_epidemic_time_with(protocol, engine, seed, u64::MAX).expect("epidemic completes")
            as f64
    })
}

/// Asserts that two hitting-time samples of the same distribution agree in
/// mean (relative tolerance) and KS distance (absolute bound).
fn assert_distributions_agree(
    what: &str,
    per_step: &[f64],
    batched: &[f64],
    mean_tolerance: f64,
    ks_bound: f64,
) {
    let (s_ps, s_b) = (Summary::of(per_step), Summary::of(batched));
    assert!(
        (s_ps.mean - s_b.mean).abs() < mean_tolerance * s_ps.mean,
        "{what}: means disagree — per-step {}, batched {}",
        s_ps.mean,
        s_b.mean
    );
    let d = ks_distance(per_step, batched);
    assert!(d < ks_bound, "{what}: KS distance {d} exceeds {ks_bound}");
}

#[test]
fn engines_agree_on_the_completion_time_distribution() {
    let per_step = completion_samples(EngineKind::PerStep);
    let batched = completion_samples(EngineKind::Batched);
    let s_ps = Summary::of(&per_step);
    let s_b = Summary::of(&batched);

    // Mean: both should sit near 2 n ln n ≈ 6390; the standard error of each
    // mean is ~2% of it, so a 12% tolerance is a > 4σ margin.
    let (m_ps, m_b) = (s_ps.mean, s_b.mean);
    let expected = 2.0 * (N as f64 - 1.0) * (N as f64).ln();
    assert!(
        (m_ps - m_b).abs() < 0.12 * m_ps,
        "means disagree: per-step {m_ps}, batched {m_b}"
    );
    for (engine, m) in [("per-step", m_ps), ("batched", m_b)] {
        assert!(
            (m - expected).abs() < 0.25 * expected,
            "{engine} mean {m} far from theory {expected}"
        );
    }

    // Variance: a factor-3 band around equality (the ratio of two 48-sample
    // variance estimates of the same distribution stays well inside it).
    let ratio = (s_ps.std_dev / s_b.std_dev).powi(2);
    assert!(
        (1.0 / 3.0..=3.0).contains(&ratio),
        "variance ratio {ratio} outside [1/3, 3]"
    );

    // KS: the 1% critical value for two 48-sample ECDFs is ≈ 0.33.
    let d = ks_distance(&per_step, &batched);
    assert!(d < 0.33, "KS distance {d} exceeds the 1% critical value");
}

/// The multi-batch collision sampler produces the same epidemic
/// completion-time distribution as the per-step engine. Its completion
/// observations carry epoch granularity (`O(√n) ≈ 28` interactions at
/// `n = 512`, ~0.4% of the ~6400-interaction mean), far inside the
/// tolerances.
#[test]
fn multibatch_agrees_on_the_completion_time_distribution() {
    let per_step = completion_samples(EngineKind::PerStep);
    let multibatch = completion_samples(EngineKind::MultiBatch);
    assert_distributions_agree(
        "multi-batch epidemic completion time",
        &per_step,
        &multibatch,
        0.12,
        0.33,
    );
}

/// The adaptive `Auto` engine produces the same epidemic completion-time
/// distribution as the per-step engine while actually switching engines
/// mid-run: under the forced [`switchy`] policy a sparse epidemic starts
/// batched, hands off to multi-batch through the dense middle, and hands
/// back once silence dominates. Passing at the fixed engines' margins is
/// the statistical-exactness check of the handoff itself.
#[test]
fn auto_agrees_on_the_completion_time_distribution() {
    let per_step = completion_samples(EngineKind::PerStep);
    let auto: Vec<f64> = TrialFleet::new(TRIALS, BASE_SEED).run_indexed(|trial, seed| {
        let mut sim = SimBuilder::new(OneWayEpidemic::new(N, 1))
            .seed(seed)
            .adaptive_config(switchy())
            .build_adaptive();
        let out = sim.run_until(|c| c.count(1) == c.population(), u64::MAX);
        assert!(out.satisfied);
        assert!(
            sim.handoffs() >= 2,
            "trial {trial}: expected real handoffs, got {}",
            sim.handoffs()
        );
        out.interactions as f64
    });
    assert_distributions_agree(
        "adaptive epidemic completion time",
        &per_step,
        &auto,
        0.12,
        0.33,
    );
}

/// Same statistical-equivalence check for the direct-collision SSLE
/// baseline: the observable is the time until the presumed ranks first form
/// a permutation, starting from the worst-case all-rank-1 configuration.
/// One `SimBuilder` path serves every engine arm; `Auto` uses the forced
/// switching policy.
fn direct_collision_samples(engine: EngineKind, n: usize, trials: usize) -> Vec<f64> {
    TrialFleet::new(trials, BASE_SEED ^ 0xD1).run(|seed| {
        let mut sim = SimBuilder::new(DirectCollisionSsle::new(n))
            .kind(engine)
            .seed(seed)
            .adaptive_config(switchy())
            .build();
        let out = sim.run_until(&mut |c| c.counts().iter().all(|&c| c == 1), u64::MAX);
        assert!(out.satisfied);
        out.interactions as f64
    })
}

#[test]
fn engines_agree_on_direct_collision_permutation_times() {
    // The last-collision phase is heavy-tailed, so the mean needs more
    // samples than the other observables to settle.
    let (n, trials) = (24usize, 48usize);
    let per_step = direct_collision_samples(EngineKind::PerStep, n, trials);
    let batched = direct_collision_samples(EngineKind::Batched, n, trials);
    // 48 samples per engine: the KS 1% critical value is ≈ 0.33; the
    // observed statistics (3.6% mean difference, KS 0.083) sit far inside.
    assert_distributions_agree(
        "direct-collision permutation time",
        &per_step,
        &batched,
        0.20,
        0.33,
    );
    // Multi-batch arm: the all-rank-1 start is the engine's showcase — the
    // whole diagonal is active, so batched degenerates to one transition per
    // draw while multi-batch resolves Θ(√n) interactions at once. The
    // permutation time is observed at epoch commits (granularity ≈ √24 ≈ 5
    // interactions on a mean of several hundred).
    let multibatch = direct_collision_samples(EngineKind::MultiBatch, n, trials);
    assert_distributions_agree(
        "direct-collision permutation time (multi-batch)",
        &per_step,
        &multibatch,
        0.20,
        0.33,
    );
    // Auto arm: the all-active start selects multi-batch initially and the
    // spreading ranks hand off to batched as the diagonal thins out.
    let auto = direct_collision_samples(EngineKind::Auto, n, trials);
    assert_distributions_agree(
        "direct-collision permutation time (auto)",
        &per_step,
        &auto,
        0.20,
        0.33,
    );
}

/// Statistical equivalence for the loosely-stabilizing leader election
/// baseline: the observable is the first interaction with a unique leader,
/// starting from the leaderless clean configuration.
#[test]
fn engines_agree_on_loose_le_recovery_times() {
    let n = 48usize;
    let trials = 24usize;
    let timer_max = 200u32;
    let sample = |engine: EngineKind| -> Vec<f64> {
        TrialFleet::new(trials, BASE_SEED ^ 0x10).run(|seed| {
            let protocol = LooselyStabilizingLe::with_timer_max(n, timer_max);
            let handle = protocol;
            let mut sim = SimBuilder::new(protocol).kind(engine).seed(seed).build();
            let out = sim.run_until(&mut |c| c.count_where(&handle, |s| s.leader) == 1, u64::MAX);
            assert!(out.satisfied);
            out.interactions as f64
        })
    };
    let (per_step, batched) = (sample(EngineKind::PerStep), sample(EngineKind::Batched));
    assert_distributions_agree(
        "loosely-stabilizing recovery time",
        &per_step,
        &batched,
        0.35,
        0.47,
    );
}

/// The acceptance check of the dynamic state indexer: `ElectLeader_r` itself
/// runs under the count engines via `DiscoveredProtocol` — with no up-front
/// `|Q|²` enumeration — and its stabilization-time distribution matches the
/// per-step engine's. One `SimBuilder` path serves every engine arm.
fn elect_leader_samples(engine: EngineKind, n: usize, r: usize, trials: usize) -> Vec<f64> {
    // The Rc-based `DiscoveredProtocol` is not `Send`, so it is constructed
    // inside the trial closure — each worker thread builds its own.
    TrialFleet::new(trials, BASE_SEED ^ 0xE1).run(|seed| {
        let protocol = ElectLeader::with_n_r(n, r).expect("valid parameters");
        let budget = protocol.params().suggested_budget();
        let opts = StabilizationOptions::new(n, budget);
        let discovered = DiscoveredProtocol::new(protocol);
        let handle = discovered.clone();
        let mut sim = SimBuilder::new(discovered)
            .kind(engine)
            .seed(seed)
            .adaptive_config(switchy())
            .build();
        let result =
            sim.measure_stabilization(&mut |c| output::is_correct_output_counts(&handle, c), opts);
        result.stabilized_at.expect("instance stabilizes") as f64
    })
}

#[test]
fn engines_agree_on_elect_leader_stabilization_times() {
    let (n, r) = (12usize, 3usize);
    let trials = 16usize;
    let per_step = elect_leader_samples(EngineKind::PerStep, n, r, trials);
    let batched = elect_leader_samples(EngineKind::Batched, n, r, trials);
    // 16 samples per engine: KS 1% critical ≈ 0.58; stabilization times have
    // a ~15% coefficient of variation, so a 25% mean tolerance is > 4σ.
    assert_distributions_agree(
        "ElectLeader_r stabilization time",
        &per_step,
        &batched,
        0.25,
        0.58,
    );
}

/// Acceptance check of the multi-batch engine on the paper's own protocol:
/// `ElectLeader_r` runs under `MultiBatchSimulation` via
/// `DiscoveredProtocol` — randomized ranking draws take the blind path,
/// deterministic ticks batch through the memoized supports — and its
/// stabilization-time distribution matches the per-step engine's.
#[test]
fn multibatch_agrees_on_elect_leader_stabilization_times() {
    let (n, r) = (12usize, 3usize);
    let trials = 16usize;
    let per_step = elect_leader_samples(EngineKind::PerStep, n, r, trials);
    let multibatch = elect_leader_samples(EngineKind::MultiBatch, n, r, trials);
    assert_distributions_agree(
        "ElectLeader_r stabilization time (multi-batch)",
        &per_step,
        &multibatch,
        0.25,
        0.58,
    );
}

/// The adaptive engine on the paper's own protocol: high pre-stabilization
/// activity runs multi-batch, the silent confirmation window after
/// stabilization hands off to the batched engine's geometric skipping —
/// and the stabilization-time distribution still matches the per-step
/// engine's at the fixed engines' margins.
#[test]
fn auto_agrees_on_elect_leader_stabilization_times() {
    let (n, r) = (12usize, 3usize);
    let trials = 16usize;
    let per_step = elect_leader_samples(EngineKind::PerStep, n, r, trials);
    let auto = elect_leader_samples(EngineKind::Auto, n, r, trials);
    assert_distributions_agree(
        "ElectLeader_r stabilization time (auto)",
        &per_step,
        &auto,
        0.25,
        0.58,
    );
}

#[test]
fn fixed_seed_reproduces_the_exact_trajectory() {
    let run = |seed: u64| -> (u64, u64, CountConfiguration) {
        let protocol = OneWayEpidemic::new(N, 1);
        let mut sim = BatchSimulation::clean(protocol, seed);
        let out = sim.run_until(|c| c.count(1) == c.population(), u64::MAX);
        assert!(out.satisfied);
        (
            out.interactions,
            sim.active_interactions(),
            sim.counts().clone(),
        )
    };
    let (interactions, active, counts) = run(123);
    let (interactions2, active2, counts2) = run(123);
    assert_eq!(interactions, interactions2);
    assert_eq!(active, active2);
    assert_eq!(counts, counts2);
    assert_ne!(run(124).0, interactions, "different seeds must diverge");
}

/// Snapshot of one full batched trajectory: a refactor of the engine, the
/// samplers, or the RNG that changes any draw will move this constant. Update
/// it only for *intentional* trajectory-affecting changes, and say so in the
/// commit message.
#[test]
fn batched_trajectory_snapshot_is_stable() {
    let protocol = OneWayEpidemic::new(256, 1);
    let mut sim = BatchSimulation::clean(protocol, 42);
    let out = sim.run_until(|c| c.count(1) == c.population(), u64::MAX);
    assert!(out.satisfied);
    assert_eq!(sim.counts().counts(), &[0, 256]);
    assert_eq!(sim.active_interactions(), 255);
    assert_eq!(out.interactions, 3_143, "trajectory snapshot moved");
}

#[test]
fn multibatch_fixed_seed_reproduces_the_exact_trajectory() {
    let run = |seed: u64| -> (u64, u64, CountConfiguration) {
        let protocol = OneWayEpidemic::new(N, 1);
        let mut sim = MultiBatchSimulation::clean(protocol, seed);
        let out = sim.run_until(|c| c.count(1) == c.population(), u64::MAX);
        assert!(out.satisfied);
        (out.interactions, sim.epochs(), sim.counts().clone())
    };
    let (interactions, epochs, counts) = run(123);
    let (interactions2, epochs2, counts2) = run(123);
    assert_eq!(interactions, interactions2);
    assert_eq!(epochs, epochs2);
    assert_eq!(counts, counts2);
    assert_ne!(run(124).0, interactions, "different seeds must diverge");
}

/// Snapshot of one full multi-batch trajectory — the analogue of the
/// 3143-interaction batched snapshot above: a refactor of the engine, the
/// hypergeometric/multinomial samplers, the collision-length table, or the
/// RNG that changes any draw will move these constants. Update them only for
/// *intentional* trajectory-affecting changes, and say so in the commit
/// message.
#[test]
fn multibatch_trajectory_snapshot_is_stable() {
    let protocol = OneWayEpidemic::new(256, 1);
    let mut sim = MultiBatchSimulation::clean(protocol, 42);
    let out = sim.run_until(|c| c.count(1) == c.population(), u64::MAX);
    assert!(out.satisfied);
    assert_eq!(sim.counts().counts(), &[0, 256]);
    assert_eq!(out.interactions, 3_065, "trajectory snapshot moved");
    assert_eq!(sim.epochs(), 284, "epoch-count snapshot moved");
}

/// Determinism of the adaptive engine, handoffs included: a fixed seed
/// reproduces the interaction count, the handoff count, and the final
/// counts bit-for-bit (switching decisions depend only on simulation state,
/// never on wall-clock measurements).
#[test]
fn auto_fixed_seed_reproduces_the_exact_trajectory() {
    let run = |seed: u64| -> (u64, u64, CountConfiguration) {
        let mut sim = SimBuilder::new(OneWayEpidemic::new(N, 1))
            .seed(seed)
            .adaptive_config(switchy())
            .build_adaptive();
        let out = sim.run_until(|c| c.count(1) == c.population(), u64::MAX);
        assert!(out.satisfied);
        (out.interactions, sim.handoffs(), sim.counts().clone())
    };
    let (interactions, handoffs, counts) = run(123);
    assert_eq!(run(123), (interactions, handoffs, counts));
    assert!(handoffs >= 2, "the sparse epidemic must hand off both ways");
    assert_ne!(run(124).0, interactions, "different seeds must diverge");
}

/// The handoff-boundary regression: an adaptive run driven in small uneven
/// budget slices must keep its absolute interaction index exact across a
/// switch (the retired engine's counter is carried over, the budget is never
/// over- or under-spent), and a warm-started stabilization measurement after
/// a handoff must still report absolute indices.
#[test]
fn auto_handoff_preserves_absolute_interaction_indices() {
    let mut sim = SimBuilder::new(OneWayEpidemic::new(N, 1))
        .seed(7)
        .adaptive_config(switchy())
        .build_adaptive();
    // Drive the run in slices misaligned with the 256-interaction check
    // interval so handoffs land mid-slice.
    let mut total = 0u64;
    for chunk in [100u64, 333, 500, 777, 1_000, 123] {
        sim.run(chunk);
        total += chunk;
        assert_eq!(sim.interactions(), total, "absolute index drifted");
    }
    assert!(sim.handoffs() >= 1, "the warm-up must cross the threshold");
    let handoffs_before = sim.handoffs();
    // Warm-started measurement: stabilized_at is absolute (includes the
    // warm-up), within this call's executed range.
    let opts = StabilizationOptions::new(N, u64::MAX / 2).confirm_window(5_000);
    let res = sim.measure_stabilization(|c| c.count(1) == c.population(), opts);
    assert!(res.stabilized());
    let t = res.stabilized_at.unwrap();
    assert!(t > total, "stabilized_at {t} must include the warm-up");
    assert!(t <= total + res.interactions);
    assert_eq!(sim.interactions(), total + res.interactions);
    // The completed epidemic is silent: the engine must have handed back to
    // batched (which then short-circuits the confirmation window on stall).
    assert_eq!(sim.current_kind(), EngineKind::Batched);
    assert!(sim.handoffs() >= handoffs_before);
}

/// The count representation and the per-agent representation describe the
/// same population: converting the final batched state to a per-agent
/// configuration preserves the multiset.
#[test]
fn batched_final_state_converts_to_a_full_configuration() {
    let protocol = OneWayEpidemic::new(100, 7);
    let mut sim = BatchSimulation::clean(protocol, 5);
    sim.run(1_000);
    let config = sim.to_configuration();
    assert_eq!(config.len(), 100);
    let informed = config.count_where(|s| *s);
    assert_eq!(informed as u64, sim.counts().count(1));
    assert!(informed >= 7, "sources stay informed");
}
