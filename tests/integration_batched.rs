//! Integration tests for the batched count-based engine: statistical
//! equivalence with the per-step engine, and determinism regressions.
//!
//! The two engines draw randomness differently, so equal seeds give
//! different trajectories; what must agree is the *distribution* of
//! observables. The epidemic completion time is the sharpest such observable
//! available in closed form (mean ≈ 2·n·ln n for the one-way epidemic), so
//! the equivalence tests compare completion-time samples of both engines by
//! mean, variance, and a two-sample Kolmogorov–Smirnov distance; the same
//! statistics cover the enumerated baselines (direct-collision ranking,
//! loosely-stabilizing leader election) and — via the dynamic state indexer
//! (`ppsim::DiscoveredProtocol`) — `ElectLeader_r` itself. All seeds are
//! fixed, so these tests are deterministic — the tolerances carry wide
//! margins over the observed statistics rather than guarding against flake.

use analysis::Engine;
use baselines::{DirectCollisionSsle, LooselyStabilizingLe};
use ppsim::epidemic::{
    measure_epidemic_time, measure_epidemic_time_batched, measure_epidemic_time_multibatch,
    OneWayEpidemic,
};
use ppsim::rng::derive_seed;
use ppsim::simulation::StabilizationOptions;
use ppsim::stats::ks_distance;
use ppsim::{
    BatchSimulation, Configuration, CountConfiguration, DiscoveredProtocol, MultiBatchSimulation,
    Simulation, Summary,
};
use ssle_core::{output, ElectLeader};

const N: usize = 512;
const TRIALS: u64 = 48;
const BASE_SEED: u64 = 0xBA7C_4ED0;

fn completion_samples(engine: Engine) -> Vec<f64> {
    (0..TRIALS)
        .map(|trial| {
            let seed = derive_seed(BASE_SEED, trial);
            let protocol = OneWayEpidemic::new(N, 1);
            let t = match engine {
                Engine::PerStep => measure_epidemic_time(protocol, seed, u64::MAX),
                Engine::Batched => measure_epidemic_time_batched(protocol, seed, u64::MAX),
                Engine::MultiBatch => measure_epidemic_time_multibatch(protocol, seed, u64::MAX),
            };
            t.expect("epidemic completes") as f64
        })
        .collect()
}

/// Asserts that two hitting-time samples of the same distribution agree in
/// mean (relative tolerance) and KS distance (absolute bound).
fn assert_distributions_agree(
    what: &str,
    per_step: &[f64],
    batched: &[f64],
    mean_tolerance: f64,
    ks_bound: f64,
) {
    let (s_ps, s_b) = (Summary::of(per_step), Summary::of(batched));
    assert!(
        (s_ps.mean - s_b.mean).abs() < mean_tolerance * s_ps.mean,
        "{what}: means disagree — per-step {}, batched {}",
        s_ps.mean,
        s_b.mean
    );
    let d = ks_distance(per_step, batched);
    assert!(d < ks_bound, "{what}: KS distance {d} exceeds {ks_bound}");
}

#[test]
fn engines_agree_on_the_completion_time_distribution() {
    let per_step = completion_samples(Engine::PerStep);
    let batched = completion_samples(Engine::Batched);
    let s_ps = Summary::of(&per_step);
    let s_b = Summary::of(&batched);

    // Mean: both should sit near 2 n ln n ≈ 6390; the standard error of each
    // mean is ~2% of it, so a 12% tolerance is a > 4σ margin.
    let (m_ps, m_b) = (s_ps.mean, s_b.mean);
    let expected = 2.0 * (N as f64 - 1.0) * (N as f64).ln();
    assert!(
        (m_ps - m_b).abs() < 0.12 * m_ps,
        "means disagree: per-step {m_ps}, batched {m_b}"
    );
    for (engine, m) in [("per-step", m_ps), ("batched", m_b)] {
        assert!(
            (m - expected).abs() < 0.25 * expected,
            "{engine} mean {m} far from theory {expected}"
        );
    }

    // Variance: a factor-3 band around equality (the ratio of two 48-sample
    // variance estimates of the same distribution stays well inside it).
    let ratio = (s_ps.std_dev / s_b.std_dev).powi(2);
    assert!(
        (1.0 / 3.0..=3.0).contains(&ratio),
        "variance ratio {ratio} outside [1/3, 3]"
    );

    // KS: the 1% critical value for two 48-sample ECDFs is ≈ 0.33.
    let d = ks_distance(&per_step, &batched);
    assert!(d < 0.33, "KS distance {d} exceeds the 1% critical value");
}

/// The multi-batch collision sampler produces the same epidemic
/// completion-time distribution as the per-step engine. Its completion
/// observations carry epoch granularity (`O(√n) ≈ 28` interactions at
/// `n = 512`, ~0.4% of the ~6400-interaction mean), far inside the
/// tolerances.
#[test]
fn multibatch_agrees_on_the_completion_time_distribution() {
    let per_step = completion_samples(Engine::PerStep);
    let multibatch = completion_samples(Engine::MultiBatch);
    assert_distributions_agree(
        "multi-batch epidemic completion time",
        &per_step,
        &multibatch,
        0.12,
        0.33,
    );
}

/// Same statistical-equivalence check for the direct-collision SSLE baseline
/// (which got its `EnumerableProtocol` impl in PR 2 but no cross-engine
/// distribution test): the observable is the time until the presumed ranks
/// first form a permutation, starting from the worst-case all-rank-1
/// configuration.
fn direct_collision_samples(engine: Engine, n: usize, trials: u64) -> Vec<f64> {
    (0..trials)
        .map(|trial| {
            let seed = derive_seed(BASE_SEED ^ 0xD1, trial);
            let protocol = DirectCollisionSsle::new(n);
            let permutation_counts = |c: &CountConfiguration| c.counts().iter().all(|&c| c == 1);
            let out = match engine {
                Engine::Batched => {
                    let mut sim = BatchSimulation::clean(protocol, seed);
                    sim.run_until(permutation_counts, u64::MAX)
                }
                Engine::MultiBatch => {
                    let mut sim = MultiBatchSimulation::clean(protocol, seed);
                    sim.run_until(permutation_counts, u64::MAX)
                }
                Engine::PerStep => {
                    let mut sim = Simulation::new(protocol, Configuration::clean(&protocol), seed);
                    sim.run_until(
                        |c| {
                            let mut seen = vec![false; n + 1];
                            c.iter()
                                .all(|&rank| !std::mem::replace(&mut seen[rank as usize], true))
                        },
                        u64::MAX,
                    )
                }
            };
            assert!(out.satisfied);
            out.interactions as f64
        })
        .collect()
}

#[test]
fn engines_agree_on_direct_collision_permutation_times() {
    // The last-collision phase is heavy-tailed, so the mean needs more
    // samples than the other observables to settle.
    let (n, trials) = (24usize, 48u64);
    let per_step = direct_collision_samples(Engine::PerStep, n, trials);
    let batched = direct_collision_samples(Engine::Batched, n, trials);
    // 48 samples per engine: the KS 1% critical value is ≈ 0.33; the
    // observed statistics (3.6% mean difference, KS 0.083) sit far inside.
    assert_distributions_agree(
        "direct-collision permutation time",
        &per_step,
        &batched,
        0.20,
        0.33,
    );
    // Multi-batch arm: the all-rank-1 start is the engine's showcase — the
    // whole diagonal is active, so batched degenerates to one transition per
    // draw while multi-batch resolves Θ(√n) interactions at once. The
    // permutation time is observed at epoch commits (granularity ≈ √24 ≈ 5
    // interactions on a mean of several hundred).
    let multibatch = direct_collision_samples(Engine::MultiBatch, n, trials);
    assert_distributions_agree(
        "direct-collision permutation time (multi-batch)",
        &per_step,
        &multibatch,
        0.20,
        0.33,
    );
}

/// Statistical equivalence for the loosely-stabilizing leader election
/// baseline: the observable is the first interaction with a unique leader,
/// starting from the leaderless clean configuration.
#[test]
fn engines_agree_on_loose_le_recovery_times() {
    let n = 48usize;
    let trials = 24u64;
    let timer_max = 200u32;
    let sample = |batched: bool| -> Vec<f64> {
        (0..trials)
            .map(|trial| {
                let seed = derive_seed(BASE_SEED ^ 0x10, trial);
                let protocol = LooselyStabilizingLe::with_timer_max(n, timer_max);
                let out = if batched {
                    let handle = protocol;
                    let mut sim = BatchSimulation::clean(protocol, seed);
                    sim.run_until(|c| c.count_where(&handle, |s| s.leader) == 1, u64::MAX)
                } else {
                    let mut sim = Simulation::new(protocol, Configuration::clean(&protocol), seed);
                    sim.run_until(|c| c.count_where(|s| s.leader) == 1, u64::MAX)
                };
                assert!(out.satisfied);
                out.interactions as f64
            })
            .collect()
    };
    let (per_step, batched) = (sample(false), sample(true));
    assert_distributions_agree(
        "loosely-stabilizing recovery time",
        &per_step,
        &batched,
        0.35,
        0.47,
    );
}

/// The acceptance check of the dynamic state indexer: `ElectLeader_r` itself
/// runs under `BatchSimulation` via `DiscoveredProtocol` — with no up-front
/// `|Q|²` enumeration — and its stabilization-time distribution matches the
/// per-step engine's.
fn elect_leader_samples(engine: Engine, n: usize, r: usize, trials: u64) -> Vec<f64> {
    (0..trials)
        .map(|trial| {
            let seed = derive_seed(BASE_SEED ^ 0xE1, trial);
            let protocol = ElectLeader::with_n_r(n, r).expect("valid parameters");
            let budget = protocol.params().suggested_budget();
            let opts = StabilizationOptions::new(n, budget);
            let result = match engine {
                Engine::Batched => {
                    let discovered = DiscoveredProtocol::new(protocol);
                    let handle = discovered.clone();
                    let mut sim = BatchSimulation::clean(discovered, seed);
                    sim.measure_stabilization(
                        |c| output::is_correct_output_counts(&handle, c),
                        opts,
                    )
                }
                Engine::MultiBatch => {
                    let discovered = DiscoveredProtocol::new(protocol);
                    let handle = discovered.clone();
                    let mut sim = MultiBatchSimulation::clean(discovered, seed);
                    sim.measure_stabilization(
                        |c| output::is_correct_output_counts(&handle, c),
                        opts,
                    )
                }
                Engine::PerStep => {
                    let config = Configuration::clean(&protocol);
                    let mut sim = Simulation::new(protocol, config, seed);
                    sim.measure_stabilization(output::is_correct_output, opts)
                }
            };
            result.stabilized_at.expect("instance stabilizes") as f64
        })
        .collect()
}

#[test]
fn engines_agree_on_elect_leader_stabilization_times() {
    let (n, r) = (12usize, 3usize);
    let trials = 16u64;
    let per_step = elect_leader_samples(Engine::PerStep, n, r, trials);
    let batched = elect_leader_samples(Engine::Batched, n, r, trials);
    // 16 samples per engine: KS 1% critical ≈ 0.58; stabilization times have
    // a ~15% coefficient of variation, so a 25% mean tolerance is > 4σ.
    assert_distributions_agree(
        "ElectLeader_r stabilization time",
        &per_step,
        &batched,
        0.25,
        0.58,
    );
}

/// Acceptance check of the multi-batch engine on the paper's own protocol:
/// `ElectLeader_r` runs under `MultiBatchSimulation` via
/// `DiscoveredProtocol` — randomized ranking draws take the blind path,
/// deterministic ticks batch through the memoized supports — and its
/// stabilization-time distribution matches the per-step engine's.
#[test]
fn multibatch_agrees_on_elect_leader_stabilization_times() {
    let (n, r) = (12usize, 3usize);
    let trials = 16u64;
    let per_step = elect_leader_samples(Engine::PerStep, n, r, trials);
    let multibatch = elect_leader_samples(Engine::MultiBatch, n, r, trials);
    assert_distributions_agree(
        "ElectLeader_r stabilization time (multi-batch)",
        &per_step,
        &multibatch,
        0.25,
        0.58,
    );
}

#[test]
fn fixed_seed_reproduces_the_exact_trajectory() {
    let run = |seed: u64| -> (u64, u64, CountConfiguration) {
        let protocol = OneWayEpidemic::new(N, 1);
        let mut sim = BatchSimulation::clean(protocol, seed);
        let out = sim.run_until(|c| c.count(1) == c.population(), u64::MAX);
        assert!(out.satisfied);
        (
            out.interactions,
            sim.active_interactions(),
            sim.counts().clone(),
        )
    };
    let (interactions, active, counts) = run(123);
    let (interactions2, active2, counts2) = run(123);
    assert_eq!(interactions, interactions2);
    assert_eq!(active, active2);
    assert_eq!(counts, counts2);
    assert_ne!(run(124).0, interactions, "different seeds must diverge");
}

/// Snapshot of one full batched trajectory: a refactor of the engine, the
/// samplers, or the RNG that changes any draw will move this constant. Update
/// it only for *intentional* trajectory-affecting changes, and say so in the
/// commit message.
#[test]
fn batched_trajectory_snapshot_is_stable() {
    let protocol = OneWayEpidemic::new(256, 1);
    let mut sim = BatchSimulation::clean(protocol, 42);
    let out = sim.run_until(|c| c.count(1) == c.population(), u64::MAX);
    assert!(out.satisfied);
    assert_eq!(sim.counts().counts(), &[0, 256]);
    assert_eq!(sim.active_interactions(), 255);
    assert_eq!(out.interactions, 3_143, "trajectory snapshot moved");
}

#[test]
fn multibatch_fixed_seed_reproduces_the_exact_trajectory() {
    let run = |seed: u64| -> (u64, u64, CountConfiguration) {
        let protocol = OneWayEpidemic::new(N, 1);
        let mut sim = MultiBatchSimulation::clean(protocol, seed);
        let out = sim.run_until(|c| c.count(1) == c.population(), u64::MAX);
        assert!(out.satisfied);
        (out.interactions, sim.epochs(), sim.counts().clone())
    };
    let (interactions, epochs, counts) = run(123);
    let (interactions2, epochs2, counts2) = run(123);
    assert_eq!(interactions, interactions2);
    assert_eq!(epochs, epochs2);
    assert_eq!(counts, counts2);
    assert_ne!(run(124).0, interactions, "different seeds must diverge");
}

/// Snapshot of one full multi-batch trajectory — the analogue of the
/// 3143-interaction batched snapshot above: a refactor of the engine, the
/// hypergeometric/multinomial samplers, the collision-length table, or the
/// RNG that changes any draw will move these constants. Update them only for
/// *intentional* trajectory-affecting changes, and say so in the commit
/// message.
#[test]
fn multibatch_trajectory_snapshot_is_stable() {
    let protocol = OneWayEpidemic::new(256, 1);
    let mut sim = MultiBatchSimulation::clean(protocol, 42);
    let out = sim.run_until(|c| c.count(1) == c.population(), u64::MAX);
    assert!(out.satisfied);
    assert_eq!(sim.counts().counts(), &[0, 256]);
    assert_eq!(out.interactions, 3_065, "trajectory snapshot moved");
    assert_eq!(sim.epochs(), 284, "epoch-count snapshot moved");
}

/// The count representation and the per-agent representation describe the
/// same population: converting the final batched state to a per-agent
/// configuration preserves the multiset.
#[test]
fn batched_final_state_converts_to_a_full_configuration() {
    let protocol = OneWayEpidemic::new(100, 7);
    let mut sim = BatchSimulation::clean(protocol, 5);
    sim.run(1_000);
    let config = sim.to_configuration();
    assert_eq!(config.len(), 100);
    let informed = config.count_where(|s| *s);
    assert_eq!(informed as u64, sim.counts().count(1));
    assert!(informed >= 7, "sources stay informed");
}
