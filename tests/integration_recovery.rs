//! Cross-crate integration tests: self-stabilization — recovery from every
//! adversarial scenario in the catalog (Lemma 6.3 / Theorem 1.1).

use ppsim::rng::derive_seed;
use ppsim::simulation::StabilizationOptions;
use ppsim::{SimRng, Simulation};
use ssle_core::{output, ElectLeader, Scenario};

fn recovers(n: usize, r: usize, scenario: Scenario, seed: u64) -> u64 {
    let protocol = ElectLeader::with_n_r(n, r).expect("valid parameters");
    let budget = protocol.params().suggested_budget();
    let mut rng = SimRng::seed_from_u64(derive_seed(seed, 1));
    let config = scenario.generate(&protocol, &mut rng);
    let mut sim = Simulation::new(protocol, config, derive_seed(seed, 2));
    let result = sim.measure_stabilization(
        output::is_correct_output,
        StabilizationOptions::new(n, budget),
    );
    assert!(
        result.stabilized(),
        "scenario {} (n={n}, r={r}, seed={seed}) did not recover within {} interactions",
        scenario.name(),
        result.interactions
    );
    assert!(output::has_unique_leader(sim.configuration()));
    result.stabilized_at.unwrap()
}

#[test]
fn recovers_from_every_catalog_scenario() {
    let (n, r) = (16, 4);
    for (i, scenario) in Scenario::catalog(n).into_iter().enumerate() {
        recovers(n, r, scenario, 100 + i as u64);
    }
}

#[test]
fn recovers_from_all_leaders_and_no_leader_in_the_fast_regime() {
    let (n, r) = (16, 8);
    recovers(n, r, Scenario::AllLeaders, 7);
    recovers(n, r, Scenario::NoLeader, 8);
}

#[test]
fn recovers_from_uniform_random_garbage_with_several_seeds() {
    let (n, r) = (16, 4);
    for seed in 0..4 {
        recovers(n, r, Scenario::UniformRandom, 500 + seed);
    }
}

#[test]
fn duplicate_ranks_are_repaired_faster_with_larger_r() {
    // Detection dominates repair here; with r = n/2 the collision is found in
    // a single group of size n/2, with r = 1 only direct meetings count.
    // Averaged over a few seeds the larger r should not be slower.
    let n = 16;
    let average = |r: usize| -> f64 {
        (0..4u64)
            .map(|seed| recovers(n, r, Scenario::DuplicateRanks(2), 900 + seed) as f64)
            .sum::<f64>()
            / 4.0
    };
    let slow = average(1);
    let fast = average(8);
    assert!(
        fast <= slow * 1.5,
        "recovery with r=8 ({fast}) should not be much slower than with r=1 ({slow})"
    );
}

#[test]
fn mid_run_corruption_is_also_repaired() {
    // Failure injection: corrupt the population *after* it stabilized and
    // check that it re-stabilizes (possibly to a different ranking).
    let (n, r) = (16, 4);
    let protocol = ElectLeader::with_n_r(n, r).unwrap();
    let budget = protocol.params().suggested_budget();
    let config = ppsim::Configuration::clean(&protocol);
    let mut sim = Simulation::new(protocol, config, 77);
    let first = sim.measure_stabilization(
        output::is_correct_output,
        StabilizationOptions::new(n, budget),
    );
    assert!(first.stabilized());

    // Corrupt half the agents: duplicate the rank-1 agent's state everywhere.
    let leader_state = sim
        .configuration()
        .iter()
        .find(|s| s.verified_rank() == Some(1))
        .unwrap()
        .clone();
    for i in 0..n / 2 {
        sim.configuration_mut()[i] = leader_state.clone();
    }
    assert!(
        !output::is_correct_output(sim.configuration())
            || output::leader_count(sim.configuration()) == 1
    );

    let second = sim.measure_stabilization(
        output::is_correct_output,
        StabilizationOptions::new(n, budget),
    );
    assert!(
        second.stabilized(),
        "must re-stabilize after mid-run corruption"
    );
    assert!(output::has_unique_leader(sim.configuration()));
}
