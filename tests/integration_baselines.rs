//! Cross-crate integration tests for the baseline protocols and the
//! comparison experiment: all baselines converge through the shared `ppsim`
//! substrate, and the headline ordering of experiment E6 holds at small
//! scale.

use baselines::{CaiIzumiWada, DirectCollisionSsle, LooselyStabilizingLe, MinIdLeaderElection};
use ppsim::simulation::StabilizationOptions;
use ppsim::{Configuration, LeaderOutput, RankingOutput, Simulation};
use ssle_core::{output, ElectLeader};

fn stabilization_time<P, F>(protocol: P, budget: u64, seed: u64, pred: F) -> f64
where
    P: ppsim::Protocol + ppsim::CleanInit,
    F: FnMut(&Configuration<P::State>) -> bool,
{
    let n = protocol.population_size();
    let config = Configuration::clean(&protocol);
    let mut sim = Simulation::new(protocol, config, seed);
    let result = sim.measure_stabilization(pred, StabilizationOptions::new(n, budget));
    result
        .parallel_time()
        .unwrap_or_else(|| panic!("baseline did not converge within {budget} interactions"))
}

#[test]
fn every_baseline_converges_at_small_scale() {
    let n = 24;
    let budget = 100 * (n as u64) * (n as u64) + 100_000;
    let ciw = stabilization_time(CaiIzumiWada::new(n), budget, 1, |c| {
        CaiIzumiWada::new(n).is_correct_ranking(c.as_slice())
    });
    let direct = stabilization_time(DirectCollisionSsle::new(n), budget, 2, |c| {
        DirectCollisionSsle::new(n).is_correct_ranking(c.as_slice())
    });
    let min_id = stabilization_time(MinIdLeaderElection::new(n), budget, 3, |c| {
        c.iter().all(|s| s.identifier.is_some())
            && MinIdLeaderElection::new(n).leader_count(c.as_slice()) == 1
    });
    let loose = stabilization_time(LooselyStabilizingLe::new(n), budget, 4, |c| {
        LooselyStabilizingLe::new(n).leader_count(c.as_slice()) == 1
    });
    assert!(ciw > 0.0 && direct > 0.0 && min_id > 0.0 && loose > 0.0);
    // The non-self-stabilizing min-ID reference line is far faster than the
    // Θ(n²)-time ranking baselines.
    assert!(
        min_id < ciw,
        "min-ID ({min_id}) should beat Cai-Izumi-Wada ({ciw})"
    );
}

#[test]
fn elect_leader_fast_regime_beats_quadratic_baseline_on_average() {
    // The headline comparison of experiment E6 at a small size: averaged over
    // a few seeds, ElectLeader_r with r = n/2 needs fewer interactions than
    // the Θ(n²)-time Cai-Izumi-Wada baseline.
    let n = 32;
    let trials = 3u64;
    let mut elect_total = 0.0;
    let mut ciw_total = 0.0;
    for seed in 0..trials {
        let protocol = ElectLeader::with_n_r(n, n / 2).unwrap();
        let budget = protocol.params().suggested_budget();
        let config = Configuration::clean(&protocol);
        let mut sim = Simulation::new(protocol, config, 10 + seed);
        let result = sim.measure_stabilization(
            output::is_correct_output,
            StabilizationOptions::new(n, budget),
        );
        elect_total += result.parallel_time().expect("ElectLeader_r stabilizes");

        ciw_total += stabilization_time(
            CaiIzumiWada::new(n),
            200 * (n as u64) * (n as u64),
            20 + seed,
            |c| CaiIzumiWada::new(n).is_correct_ranking(c.as_slice()),
        );
    }
    assert!(
        elect_total < ciw_total,
        "ElectLeader_r (total parallel time {elect_total:.1}) should beat \
         Cai-Izumi-Wada ({ciw_total:.1}) already at n = {n}"
    );
}

#[test]
fn baselines_and_core_share_the_same_simulation_substrate() {
    // The same Simulation API drives both the paper's protocol and the
    // baselines — a sanity check that the comparison is apples to apples.
    let ciw = CaiIzumiWada::new(8);
    let sim = Simulation::new(ciw, Configuration::clean(&CaiIzumiWada::new(8)), 0);
    assert_eq!(sim.configuration().len(), 8);
    let el = ElectLeader::with_n_r(8, 4).unwrap();
    let sim = Simulation::new(
        el,
        Configuration::clean(&ElectLeader::with_n_r(8, 4).unwrap()),
        0,
    );
    assert_eq!(sim.configuration().len(), 8);
}
