//! Cross-crate integration tests: whole-protocol stabilization of
//! `ElectLeader_r` from clean starts across a grid of `(n, r)` parameters,
//! checked end to end through the public APIs of `ppsim` and `ssle-core`.

use ppsim::simulation::StabilizationOptions;
use ppsim::{Configuration, LeaderOutput, RankingOutput, Simulation};
use ssle_core::{classify, output, satisfies_safe_shape, ElectLeader, RecoveryLevel};

fn stabilize(n: usize, r: usize, seed: u64) -> Simulation<ElectLeader> {
    let protocol = ElectLeader::with_n_r(n, r).expect("valid parameters");
    let budget = protocol.params().suggested_budget();
    let config = Configuration::clean(&protocol);
    let mut sim = Simulation::new(protocol, config, seed);
    let result = sim.measure_stabilization(
        output::is_correct_output,
        StabilizationOptions::new(n, budget),
    );
    assert!(
        result.stabilized(),
        "n={n} r={r} seed={seed}: did not stabilize within {} interactions",
        result.interactions
    );
    sim
}

#[test]
fn stabilizes_across_the_parameter_grid() {
    for (n, r, seed) in [
        (8usize, 1usize, 1u64),
        (8, 4, 2),
        (16, 2, 3),
        (16, 8, 4),
        (24, 12, 5),
        (32, 4, 6),
        (32, 16, 7),
    ] {
        let sim = stabilize(n, r, seed);
        let config = sim.configuration();
        assert!(output::is_correct_output(config), "n={n} r={r}");
        assert!(output::has_unique_leader(config), "n={n} r={r}");
        assert!(satisfies_safe_shape(config), "n={n} r={r}");
        // Immediately after the output stabilizes the probation timers may
        // still be ticking down (level E3\E4); both levels are inside the
        // safe region for a correct ranking.
        let level = classify(config);
        assert!(
            matches!(level, RecoveryLevel::OnProbation | RecoveryLevel::Correct),
            "n={n} r={r}: unexpected level {level:?}"
        );
    }
}

#[test]
fn protocol_traits_agree_with_output_helpers() {
    let sim = stabilize(16, 8, 11);
    let protocol = sim.protocol();
    let states = sim.configuration().as_slice();
    assert_eq!(
        protocol.leader_count(states),
        output::leader_count(sim.configuration())
    );
    assert!(protocol.is_correct_ranking(states));
    // Ranks are exactly 1..=n.
    let mut ranks: Vec<usize> = states.iter().map(|s| protocol.rank(s).unwrap()).collect();
    ranks.sort_unstable();
    assert_eq!(ranks, (1..=16).collect::<Vec<_>>());
}

#[test]
fn stabilized_configuration_stays_correct_under_further_interactions() {
    // Closure (Lemma 6.1): once in the safe set, the output never changes.
    let mut sim = stabilize(16, 8, 21);
    let ranks_before: Vec<Option<u32>> = sim
        .configuration()
        .iter()
        .map(|s| s.verified_rank())
        .collect();
    sim.run(200_000);
    let ranks_after: Vec<Option<u32>> = sim
        .configuration()
        .iter()
        .map(|s| s.verified_rank())
        .collect();
    assert_eq!(
        ranks_before, ranks_after,
        "ranks must never change after stabilization"
    );
    assert!(output::is_correct_output(sim.configuration()));
}

#[test]
fn different_seeds_may_elect_different_leaders_but_always_exactly_one() {
    let mut leaders = std::collections::HashSet::new();
    for seed in 30..36 {
        let sim = stabilize(16, 8, seed);
        let leader = sim
            .configuration()
            .iter()
            .position(|s| s.verified_rank() == Some(1))
            .expect("one leader");
        assert_eq!(output::leader_count(sim.configuration()), 1);
        leaders.insert(leader);
    }
    // Anonymous agents: over several seeds the leader should not always be
    // the same population slot.
    assert!(
        leaders.len() > 1,
        "leader should depend on the random schedule"
    );
}

#[test]
fn interaction_metrics_are_consistent_after_a_run() {
    let sim = stabilize(16, 4, 41);
    let metrics = sim.metrics();
    assert_eq!(metrics.total(), sim.interactions());
    // Every agent interacted at least once in a run long enough to stabilize.
    assert!(metrics.min() > 0);
    assert!(
        metrics.max_imbalance() < 3.0,
        "per-agent interaction counts stay balanced"
    );
}
