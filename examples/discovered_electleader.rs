//! `ElectLeader_r` under the count-based engines via the dynamic state
//! indexer, through the unified `ppsim::engine` API.
//!
//! The protocol's reachable state space is far too large to enumerate, so
//! the classic batched-engine route (a hand-written `EnumerableProtocol`
//! bijection) is closed; [`DiscoveredProtocol`] opens it by assigning state
//! indices lazily as states are first reached. This example measures the
//! stabilization time of the correct-ranking predicate under any engine
//! tier (`batched`, `multibatch`, `auto`, `per-step`) and reports how many
//! states were actually discovered — a tiny corner of the nominal space.
//!
//! ```bash
//! cargo run --release --example discovered_electleader -- [n] [r] [trials] [engine]
//! ```

use ppsim::simulation::StabilizationOptions;
use ppsim::{DiscoveredProtocol, EngineKind, EnumerableProtocol, SimBuilder};
use ssle_core::{output, ElectLeader};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(48);
    let r: usize = args
        .get(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| (n / 4).max(1));
    let trials: u64 = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(3);
    let kind = args
        .get(3)
        .and_then(|a| EngineKind::parse(a))
        .unwrap_or(EngineKind::Batched);

    println!(
        "ElectLeader_{r} on n = {n} agents, {} engine via dynamic indexing",
        kind.label()
    );
    for trial in 0..trials {
        let protocol = ElectLeader::with_n_r(n, r).expect("valid parameters");
        let budget = protocol.params().suggested_budget();
        let discovered = DiscoveredProtocol::new(protocol);
        let handle = discovered.clone();
        let mut sim = SimBuilder::new(discovered)
            .kind(kind)
            .seed(0xE11 + trial)
            .build();
        let started = Instant::now();
        let result = sim.measure_stabilization(
            &mut |c| output::is_correct_output_counts(&handle, c),
            StabilizationOptions::new(n, budget),
        );
        let wall_ms = started.elapsed().as_secs_f64() * 1_000.0;
        match result.stabilized_at {
            Some(at) => println!(
                "  trial {trial}: stabilized at interaction {at} \
                 (parallel time {:.1}), {} of {} executed before the stop, \
                 {} states discovered, {wall_ms:.0} ms",
                at as f64 / n as f64,
                at.min(result.interactions),
                result.interactions,
                sim.protocol().num_states(),
            ),
            None => println!(
                "  trial {trial}: did not stabilize within {budget} interactions \
                 ({} states discovered, {wall_ms:.0} ms)",
                sim.protocol().num_states(),
            ),
        }
    }
}
