//! Quickstart: run `ElectLeader_r` from a clean start and watch it elect a
//! unique leader.
//!
//! ```bash
//! cargo run --release --example quickstart -- [n] [r] [seed]
//! ```

use ppsim::simulation::StabilizationOptions;
use ppsim::{Configuration, Simulation};
use ssle_core::{output, ElectLeader};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(64);
    let r: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(n / 2);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(42);

    let protocol = match ElectLeader::with_n_r(n, r) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("invalid parameters: {e}");
            std::process::exit(1);
        }
    };
    let budget = protocol.params().suggested_budget();
    println!("ElectLeader_r quickstart");
    println!("  population size n  = {n}");
    println!("  trade-off param r  = {r}");
    println!(
        "  rank groups        = {}",
        protocol.partition().num_groups()
    );
    println!("  interaction budget = {budget}");
    println!();

    let config = Configuration::clean(&protocol);
    let mut sim = Simulation::new(protocol, config, seed);
    let result = sim.measure_stabilization(
        output::is_correct_output,
        StabilizationOptions::new(n, budget),
    );

    match result.stabilized_at {
        Some(t) => {
            println!(
                "stabilized after {t} interactions ({:.1} parallel time)",
                t as f64 / n as f64
            );
            let config = sim.configuration();
            println!("  unique leader: {}", output::has_unique_leader(config));
            println!("  leaders found: {}", output::leader_count(config));
            let leader = config
                .iter()
                .position(|s| s.verified_rank() == Some(1))
                .expect("a leader exists");
            println!(
                "  the leader is population slot #{leader} (the agent that committed to rank 1)"
            );
        }
        None => {
            println!(
                "did not stabilize within the budget of {} interactions — try a larger budget",
                result.interactions
            );
            std::process::exit(2);
        }
    }
}
