//! Experiment-service smoke driver (the CI `server-smoke` in-process leg).
//!
//! Boots the daemon on an ephemeral loopback port, then walks the whole
//! API surface through the blocking client:
//!
//! 1. `sweep` (timing-free) over HTTP, byte-diffed against `LocalService`;
//! 2. identical re-submission, asserted served-from-cache via the `cached`
//!    status flag and the `/healthz` hit/miss counters;
//! 3. a registry experiment (`e10` at tiny scale) through the same
//!    submit→poll→fetch pipeline (its table embeds wall-clock columns, so
//!    it smoke-tests the plumbing, not byte-identity).
//!
//! Exits nonzero on any violated assertion.
//!
//! ```bash
//! cargo run --release --example service_smoke
//! ```

use std::time::Duration;

use analysis::{ExperimentService, JobSpec, JobState, LocalService, Scale};
use ssle_client::HttpClient;
use ssle_server::{spawn, ServerConfig};

fn main() {
    let server = spawn(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        cache_dir: None,
    })
    .expect("daemon starts");
    let addr = server.addr();
    println!("service_smoke: daemon on {addr}");
    let client = HttpClient::new(addr.to_string()).with_polling(Duration::from_millis(10), 30_000);

    // Leg 1: byte identity on the deterministic sweep.
    let spec = JobSpec::new("sweep", Scale::Tiny);
    let remote = client.run_job(&spec).expect("remote sweep completes");
    let local = LocalService.run_job(&spec).expect("local sweep completes");
    assert_eq!(remote, local, "remote and local sweep bytes must match");
    println!(
        "service_smoke: sweep byte-identity ok ({} bytes, job {})",
        remote.len(),
        spec.cache_key()
    );

    // Leg 2: cache hit on identical re-submission.
    let before = client.health().expect("healthz");
    let resubmitted = client.submit(&spec).expect("resubmission accepted");
    assert_eq!(
        resubmitted.state,
        JobState::Done,
        "resubmission must be already done"
    );
    assert!(resubmitted.cached, "resubmission must be flagged cached");
    let replay = client.result(&resubmitted.job).expect("cached result");
    assert_eq!(replay, remote, "cache must serve the original bytes");
    let after = client.health().expect("healthz");
    assert_eq!(
        after.cache_hits,
        before.cache_hits + 1,
        "hit counter must bump"
    );
    assert_eq!(
        after.cache_misses, before.cache_misses,
        "no new execution scheduled"
    );
    println!(
        "service_smoke: cache hit ok (hits {} -> {}, misses {})",
        before.cache_hits, after.cache_hits, after.cache_misses
    );

    // Leg 3: a registry experiment through the full pipeline.
    let e10 = JobSpec::new("e10", Scale::Tiny);
    let table = client.run_job(&e10).expect("remote e10 completes");
    assert!(
        table.contains("\"title\""),
        "e10 result must be a table document"
    );
    println!("service_smoke: registry e10 ok ({} bytes)", table.len());

    let health = client.health().expect("healthz");
    println!(
        "service_smoke: PASS (submitted {}, completed {}, hits {}, misses {})",
        health.jobs_submitted, health.jobs_completed, health.cache_hits, health.cache_misses
    );
    server.shutdown();
}
