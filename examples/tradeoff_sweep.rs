//! The space–time trade-off of Theorem 1.1, measured end to end: sweep the
//! trade-off parameter `r` at a fixed population size and print both the
//! stabilization time and the state-space size for every point.
//!
//! ```bash
//! cargo run --release --example tradeoff_sweep -- [tiny|quick|full]
//! ```

use analysis::experiments::tradeoff::{e1_tradeoff_time, e2_state_space};
use analysis::Scale;

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|a| Scale::parse(&a))
        .unwrap_or(Scale::Quick);
    println!("Running the Theorem 1.1 trade-off sweep at {scale:?} scale…\n");
    let time = e1_tradeoff_time(scale);
    println!("{}", time.to_markdown());
    let space = e2_state_space(scale);
    println!("{}", space.to_markdown());
    println!("Reading the two tables together gives the paper's trade-off: every doubling of r");
    println!("roughly halves the stabilization time and roughly quadruples the bit complexity.");
}
