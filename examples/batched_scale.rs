//! Batched-engine showcase: run a one-way epidemic at a million-agent scale
//! and compare wall-clock against the per-step engine at the same size —
//! both through the unified `ppsim::engine` API.
//!
//! ```bash
//! cargo run --release --example batched_scale -- [n] [seed]
//! ```
//!
//! The per-step comparison is skipped above 10⁷ agents, where it would take
//! minutes; the batched run stays in the sub-second range because its cost is
//! proportional to the `n − 1` state-changing interactions only. (The
//! per-step tier's completion predicate is O(1) per check thanks to its
//! count mirror, so it no longer needs coarse checking here.)

use ppsim::epidemic::{epidemic_constant, measure_epidemic_time_with, OneWayEpidemic};
use ppsim::EngineKind;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(1_000_000);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(42);
    let nf = n as f64;
    let budget = (50.0 * nf * nf.ln().max(1.0)).ceil() as u64;

    println!("one-way epidemic, n = {n}, seed = {seed}");
    println!();

    let started = Instant::now();
    let t =
        measure_epidemic_time_with(OneWayEpidemic::new(n, 1), EngineKind::Batched, seed, budget)
            .expect("epidemic completes");
    let batched_secs = started.elapsed().as_secs_f64();
    println!("batched engine:");
    println!("  completion interactions = {t}");
    println!("  parallel time           = {:.2}", t as f64 / nf);
    println!("  epidemic constant       = {:.3}", epidemic_constant(t, n));
    println!("  wall clock              = {batched_secs:.3} s");
    println!(
        "  throughput              = {:.1} M interactions/s",
        t as f64 / batched_secs / 1e6
    );
    println!();

    if n > 10_000_000 {
        println!("per-step engine: skipped (n too large; try n <= 10^7)");
        return;
    }
    let started = Instant::now();
    let t =
        measure_epidemic_time_with(OneWayEpidemic::new(n, 1), EngineKind::PerStep, seed, budget)
            .expect("epidemic completes");
    let per_step_secs = started.elapsed().as_secs_f64();
    println!("per-step engine:");
    println!("  completion interactions = {t}");
    println!("  wall clock              = {per_step_secs:.3} s");
    println!(
        "  throughput              = {:.1} M interactions/s",
        t as f64 / per_step_secs / 1e6
    );
    println!();
    println!(
        "batched speedup: {:.1}x",
        per_step_secs / batched_secs.max(1e-9)
    );
}
