//! Collision detection in isolation: plant duplicated ranks in an otherwise
//! correct, fully verified population and watch `DetectCollision_r` find
//! them, comparing the message-based mechanism against the "wait until two
//! same-rank agents meet" baseline the paper argues against (Section 3.1).
//!
//! ```bash
//! cargo run --release --example collision_detection -- [n] [r] [duplicates] [trials]
//! ```

use ppsim::rng::derive_seed;
use ppsim::{SimRng, Simulation};
use ssle_core::{ElectLeader, Scenario};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(64);
    let r: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(n / 2);
    let duplicates: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2);
    let trials: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(5);

    println!("Collision-detection latency (n = {n}, r = {r}, {duplicates} duplicated ranks)");
    println!(
        "{:>6} {:>26} {:>26}",
        "trial", "detection (interactions)", "naive same-rank meeting"
    );

    let mut detection_total = 0.0;
    let mut naive_total = 0.0;
    for trial in 0..trials {
        let protocol = ElectLeader::with_n_r(n, r).expect("valid parameters");
        let budget = protocol.params().suggested_budget();
        let mut rng = SimRng::seed_from_u64(derive_seed(0xC0111D, trial));
        let config = Scenario::DuplicateRanks(duplicates).generate(&protocol, &mut rng);

        // Naive baseline: wait until a designated duplicate pair meets
        // directly under the uniformly random scheduler.
        let naive = simulate_direct_meeting(n, duplicates, derive_seed(0xBEEF, trial));

        let mut sim = Simulation::new(protocol, config, derive_seed(0xD07, trial));
        let outcome = sim.run_until(|c| c.any(|s| s.is_resetting()), budget);
        let detected = if outcome.satisfied {
            outcome.interactions
        } else {
            budget
        };
        println!("{trial:>6} {detected:>26} {naive:>26}");
        detection_total += detected as f64;
        naive_total += naive as f64;
    }
    println!();
    println!(
        "mean detection: {:.0} interactions ({:.1} parallel time)",
        detection_total / trials as f64,
        detection_total / trials as f64 / n as f64
    );
    println!(
        "mean naive same-rank meeting: {:.0} interactions ({:.1} parallel time)",
        naive_total / trials as f64,
        naive_total / trials as f64 / n as f64
    );
    println!(
        "The message-based mechanism should win by a growing factor as n grows (Section 3.1)."
    );
}

/// Simulates the naive baseline: how many uniformly random ordered pairs are
/// drawn until one of the `duplicates` designated agents meets its duplicate
/// partner.
fn simulate_direct_meeting(n: usize, duplicates: usize, seed: u64) -> u64 {
    use rand::RngCore;
    let mut rng = SimRng::seed_from_u64(seed);
    let duplicates = duplicates.max(1);
    // Duplicate pairs: (i, n - duplicates + i) for i in 0..duplicates.
    let mut steps = 0u64;
    loop {
        steps += 1;
        let a = (rng.next_u64() % n as u64) as usize;
        let mut b = (rng.next_u64() % (n as u64 - 1)) as usize;
        if b >= a {
            b += 1;
        }
        let (lo, hi) = (a.min(b), a.max(b));
        if lo < duplicates && hi == n - duplicates + lo {
            return steps;
        }
    }
}
