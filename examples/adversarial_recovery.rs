//! Adversarial recovery: start `ElectLeader_r` from every adversarial
//! scenario of the catalog and report how long the protocol needs to recover
//! a correct configuration — the self-stabilization property in action.
//!
//! ```bash
//! cargo run --release --example adversarial_recovery -- [n] [r] [seed]
//! ```

use ppsim::simulation::StabilizationOptions;
use ppsim::{SimRng, Simulation};
use ssle_core::{classify, output, ElectLeader, Scenario};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(32);
    let r: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(7);

    let protocol = ElectLeader::with_n_r(n, r).expect("valid parameters");
    let budget = protocol.params().suggested_budget();
    println!("Self-stabilization from adversarial configurations (n = {n}, r = {r})");
    println!(
        "{:<26} {:<30} {:>14} {:>10}",
        "scenario", "hierarchy level at start", "interactions", "par. time"
    );

    for scenario in Scenario::catalog(n) {
        let protocol = ElectLeader::with_n_r(n, r).expect("valid parameters");
        let mut rng = SimRng::seed_from_u64(seed);
        let config = scenario.generate(&protocol, &mut rng);
        let level = classify(&config);
        let mut sim = Simulation::new(protocol, config, seed ^ 0x1234);
        let result = sim.measure_stabilization(
            output::is_correct_output,
            StabilizationOptions::new(n, budget),
        );
        match result.stabilized_at {
            Some(t) => println!(
                "{:<26} {:<30} {:>14} {:>10.1}",
                scenario.name(),
                level.label(),
                t,
                t as f64 / n as f64
            ),
            None => println!(
                "{:<26} {:<30} {:>14} {:>10}",
                scenario.name(),
                level.label(),
                "DID NOT RECOVER",
                "-"
            ),
        }
    }
    println!();
    println!(
        "Every scenario should recover: that is the self-stabilization guarantee of Theorem 1.1."
    );
}
