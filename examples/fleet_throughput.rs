//! Fleet throughput smoke: trials/sec of the same fleet workload at 1
//! worker thread versus all available threads, with an assertable speedup.
//!
//! ```bash
//! cargo run --release --example fleet_throughput            # report only
//! cargo run --release --example fleet_throughput -- --assert
//! ```
//!
//! With `--assert` the example exits nonzero unless the N-thread run beats
//! the 1-thread run by a generous margin (N-thread trials/sec must exceed
//! 1.2× single-thread when at least two cores are available) — the CI
//! fleet-throughput smoke. The margin is deliberately loose: CI runners are
//! noisy, and the guard is against *losing* parallelism entirely, not
//! against scheduler jitter. On a single-core host the assertion is vacuous
//! and the example says so.
//!
//! The aggregates of the two runs are also compared bit-for-bit — the
//! determinism guarantee, enforced wherever the smoke runs.

use analysis::experiments::fleet::measure_fleet_throughput;

fn main() {
    let assert_speedup = std::env::args().any(|a| a == "--assert");
    let available = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let (n, trials, base_seed) = (1_024usize, 128usize, 0xF1EE7u64);

    println!("fleet throughput smoke: epidemic n={n}, {trials} trials, auto engine");
    let single = measure_fleet_throughput(n, trials, base_seed, 1);
    println!(
        "  1 thread : {:8.1} trials/sec  ({:.0} ms wall)",
        single.trials_per_sec, single.wall_ms
    );
    if available < 2 {
        println!("  single-core host: multi-thread comparison skipped");
        if assert_speedup {
            println!("  --assert: vacuously satisfied (nothing to parallelize over)");
        }
        return;
    }

    let multi = measure_fleet_throughput(n, trials, base_seed, available);
    println!(
        "  {available} threads: {:8.1} trials/sec  ({:.0} ms wall)",
        multi.trials_per_sec, multi.wall_ms
    );
    let speedup = multi.trials_per_sec / single.trials_per_sec.max(1e-9);
    println!("  speedup  : {speedup:.2}× trials/sec");

    assert_eq!(
        single.stats.value.mean().to_bits(),
        multi.stats.value.mean().to_bits(),
        "aggregated mean must be bit-identical across thread counts"
    );
    assert_eq!(
        single.stats.samples(),
        multi.stats.samples(),
        "retained sample must be identical across thread counts"
    );
    println!("  aggregates bit-identical across thread counts: ok");

    if assert_speedup && speedup < 1.2 {
        eprintln!(
            "FAIL: {available}-thread fleet ran at {speedup:.2}× single-thread trials/sec \
             (expected > 1.2× on a {available}-core runner) — parallelism lost?"
        );
        std::process::exit(1);
    }
}
