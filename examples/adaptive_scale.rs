//! Adaptive-engine showcase: one epidemic run under the `Auto` tier, with
//! the handoff timeline visible, raced against both fixed count engines.
//!
//! ```bash
//! cargo run --release --example adaptive_scale -- [n] [seed]
//! ```
//!
//! The sparse one-source epidemic is the adaptive engine's full exercise:
//! it starts almost fully silent (batched territory), passes through a
//! dense middle where most interactions change state (multi-batch
//! territory), and ends silent again — so a good policy hands off twice and
//! beats both fixed engines' whole-run wall clocks.

use ppsim::epidemic::{OneWayEpidemic, INFORMED};
use ppsim::{EngineKind, SimBuilder};
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(1_000_000);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(42);
    let nf = n as f64;
    let budget = (50.0 * nf * nf.ln().max(1.0)).ceil() as u64;

    println!("one-way epidemic (1 source), n = {n}, seed = {seed}");
    println!();

    // The adaptive run, with handoff introspection via the concrete type.
    let mut sim = SimBuilder::new(OneWayEpidemic::new(n, 1))
        .seed(seed)
        .build_adaptive();
    println!(
        "auto engine (thresholds: hand off to multi-batch above {:.0}% activity, back to \
         batched below {:.0}%):",
        100.0 * sim.adaptive_config().high_activity,
        100.0 * sim.adaptive_config().low_activity,
    );
    println!("  start in {} mode", sim.current_kind().label());
    let started = Instant::now();
    let out = sim.run_until(|c| c.count(INFORMED) == c.population(), budget);
    let auto_secs = started.elapsed().as_secs_f64();
    assert!(out.satisfied, "epidemic completes");
    println!("  completion interactions = {}", out.interactions);
    println!("  engine handoffs         = {}", sim.handoffs());
    println!("  final mode              = {}", sim.current_kind().label());
    println!("  wall clock              = {auto_secs:.3} s");
    println!();

    // The fixed engines on the same workload, through the same API.
    for kind in [EngineKind::Batched, EngineKind::MultiBatch] {
        let mut sim = SimBuilder::new(OneWayEpidemic::new(n, 1))
            .kind(kind)
            .seed(seed)
            .build();
        let started = Instant::now();
        let out = sim.run_until(&mut |c| c.count(INFORMED) == c.population(), budget);
        let secs = started.elapsed().as_secs_f64();
        assert!(out.satisfied, "epidemic completes");
        println!("{} engine:", kind.label());
        println!("  completion interactions = {}", out.interactions);
        println!("  wall clock              = {secs:.3} s");
        println!(
            "  auto is {:.2}x this engine's wall clock",
            auto_secs / secs.max(1e-9)
        );
        println!();
    }
}
