//! Fleet determinism probe: runs a fixed `TrialFleet` workload and prints
//! the aggregated statistics as a **timing-free CSV with exact bit
//! patterns**, so runs at different thread counts can be diffed
//! byte-for-byte.
//!
//! ```bash
//! RAYON_NUM_THREADS=1 cargo run --release --example fleet_determinism > one.csv
//! RAYON_NUM_THREADS=4 cargo run --release --example fleet_determinism > four.csv
//! cmp one.csv four.csv   # must be identical
//! ```
//!
//! This is the workload behind the CI `fleet-determinism` job. Every float
//! is rendered through `f64::to_bits` (hex), so even a one-ulp divergence
//! between schedules breaks the diff; there are no wall-clock columns to
//! launder nondeterminism through. The thread count is *reported* on stderr
//! only, keeping stdout identical across configurations.
//!
//! Two workloads cover both count-engine paths: a one-way epidemic under the
//! `Auto` tier (adaptive handoffs included) and an `ElectLeader_r` cell via
//! the dynamic state indexer (the Rc-based `DiscoveredProtocol` is built
//! inside each trial closure — per-worker, never shared).
//!
//! With `--trace <path>` the probe additionally reruns the epidemic workload
//! with a `ppsim::telemetry` handle per trial, merges the per-trial reports
//! in trial order, and writes the **deterministic stream only** as JSONL —
//! the telemetry analogue of the CSV: counters, histograms, and handoff
//! events with no wall-clock fields, so the exported file must also be
//! byte-identical across thread counts.

use ppsim::digest::Fnv64;
use ppsim::epidemic::{measure_epidemic_time_with, OneWayEpidemic};
use ppsim::simulation::StabilizationOptions;
use ppsim::{
    DiscoveredProtocol, EngineKind, FleetStats, SimBuilder, Telemetry, TelemetryReport, TrialFleet,
};
use ssle_core::{output, ElectLeader};

const BASE_SEED: u64 = 0xDE7E_2141;

fn epidemic_stats(trials: usize, n: usize) -> FleetStats {
    let nf = n as f64;
    let budget = (50.0 * nf * nf.ln().max(1.0)).ceil() as u64;
    TrialFleet::new(trials, BASE_SEED).run_stats(|seed| {
        measure_epidemic_time_with(OneWayEpidemic::new(n, 1), EngineKind::Auto, seed, budget)
            .map(|interactions| interactions as f64 / nf)
    })
}

fn elect_leader_stats(trials: usize, n: usize, r: usize) -> FleetStats {
    TrialFleet::new(trials, BASE_SEED ^ 0xE1).run_stats(|seed| {
        let protocol = ElectLeader::with_n_r(n, r).expect("valid parameters");
        let budget = protocol.params().suggested_budget();
        let opts = StabilizationOptions::new(n, budget);
        let discovered = DiscoveredProtocol::new(protocol);
        let handle = discovered.clone();
        let mut sim = SimBuilder::new(discovered)
            .kind(EngineKind::Batched)
            .seed(seed)
            .build();
        let result =
            sim.measure_stabilization(&mut |c| output::is_correct_output_counts(&handle, c), opts);
        result.stabilized_at.map(|t| t as f64 / n as f64)
    })
}

/// Reruns the epidemic workload traced and folds the per-trial telemetry
/// reports — in trial order, so the merge is schedule-independent — into one
/// deterministic-stream JSONL document.
fn traced_epidemic_det_stream(trials: usize, n: usize) -> String {
    let nf = n as f64;
    let budget = (50.0 * nf * nf.ln().max(1.0)).ceil() as u64;
    let reports = TrialFleet::new(trials, BASE_SEED).run(|seed| {
        let telemetry = Telemetry::enabled();
        let mut sim = SimBuilder::new(OneWayEpidemic::new(n, 1))
            .kind(EngineKind::Auto)
            .seed(seed)
            .telemetry(telemetry.clone())
            .build();
        let out = sim.run_until(&mut |c| c.count(1) == c.population(), budget);
        assert!(out.satisfied, "epidemic completes within 50 n ln n");
        telemetry.report().expect("enabled handle has a report")
    });
    let mut merged = TelemetryReport::default();
    for report in &reports {
        merged.merge(report);
    }
    merged.deterministic_jsonl()
}

fn emit(workload: &str, stats: &FleetStats) {
    // Digest of the full retained sample: every observation's bit pattern
    // folded in (word-wise, `ppsim::digest::Fnv64` — the CI diff contract
    // pins this fold), so a single reordered or perturbed sample changes the
    // row.
    let mut hasher = Fnv64::new();
    for v in stats.samples() {
        hasher.write_f64_bits(*v);
    }
    let sample_digest = hasher.finish();
    println!(
        "{workload},{},{},{:#018x},{:#018x},{:#018x},{:#018x},{},{:#018x}",
        stats.trials,
        stats.successes,
        stats.value.mean().to_bits(),
        stats.value.sample_variance().to_bits(),
        stats.value.min().to_bits(),
        stats.value.max().to_bits(),
        stats.samples().len(),
        sample_digest,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let trace_at = args.iter().position(|a| a == "--trace");
    let trace_path = trace_at.and_then(|i| args.get(i + 1)).cloned();
    let trials: usize = args
        .iter()
        .enumerate()
        .filter(|(i, _)| trace_at.map_or(true, |t| *i != t && *i != t + 1))
        .map(|(_, a)| a)
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(96);
    eprintln!(
        "fleet determinism probe: {trials} trials/workload on {} worker thread(s)",
        rayon::current_num_threads()
    );
    println!(
        "workload,trials,successes,mean_bits,variance_bits,min_bits,max_bits,samples,sample_digest"
    );
    emit("epidemic_auto_n512", &epidemic_stats(trials, 512));
    emit(
        "elect_leader_n12_r3",
        &elect_leader_stats(trials.div_ceil(6), 12, 3),
    );
    if let Some(path) = trace_path {
        let jsonl = traced_epidemic_det_stream(trials, 512);
        std::fs::write(&path, jsonl).expect("write deterministic trace");
        eprintln!("wrote deterministic telemetry stream to {path}");
    }
}
