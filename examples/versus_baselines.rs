//! `ElectLeader_r` versus the baseline protocols (experiment E6): compare
//! the time to a correct output across population sizes for three
//! `ElectLeader_r` regimes and the four baselines.
//!
//! ```bash
//! cargo run --release --example versus_baselines -- [tiny|quick|full]
//! ```

use analysis::experiments::comparison::e6_versus_baselines;
use analysis::Scale;

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|a| Scale::parse(&a))
        .unwrap_or(Scale::Quick);
    println!("Running the baseline comparison at {scale:?} scale…\n");
    let table = e6_versus_baselines(scale);
    println!("{}", table.to_markdown());
}
